// Randomized end-to-end property tests in the regime the packed-key
// collision bug lived in: documents past 10k tokens and window length
// bounds past 255 (the old dedupe key gave the length 8 bits). Every
// world plants a "widener" entity — hundreds of distinct tokens, absent
// from the document — whose only effect is stretching
// SubstringLengthBounds far beyond 255, so long windows are enumerated,
// registered, and deduped for real. Seeds are logged with every failure
// for reproduction.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/baseline/brute_force.h"
#include "src/core/aeetes.h"
#include "src/core/candidate_generator.h"
#include "src/index/clustered_index.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::NumberedName;
using testutil::Sorted;

constexpr FilterStrategy kAllStrategies[] = {
    FilterStrategy::kSimple, FilterStrategy::kSkip, FilterStrategy::kDynamic,
    FilterStrategy::kLazy};

// Debug builds (the sanitizer matrix) run the same property at a fraction
// of the document size — the >10k-token release-mode regime is exactly
// where the packed-key collision lived, and `tools/check.sh release`
// covers it at full size with DCHECKs compiled out.
#ifdef NDEBUG
constexpr size_t kLongDocLen = 9000;   // inflates past 10k with mentions
constexpr size_t kOracleDocLen = 300;
#else
constexpr size_t kLongDocLen = 1500;
constexpr size_t kOracleDocLen = 120;
#endif

struct LongWindowWorld {
  std::unique_ptr<DerivedDictionary> dd;
  TokenSeq doc_tokens;
};

/// MakeRandomWorld plus a widener entity of `widener_size` distinct
/// dedicated tokens (never emitted into the document). With tau = 0.7 a
/// 280-token widener pushes the window upper bound to exactly 400.
LongWindowWorld MakeLongWindowWorld(std::mt19937_64& rng, size_t vocab,
                                    size_t num_entities, size_t num_rules,
                                    size_t doc_len, size_t widener_size) {
  auto dict = std::make_unique<TokenDictionary>();
  std::vector<TokenId> ids;
  for (size_t i = 0; i < vocab; ++i) {
    ids.push_back(dict->GetOrAdd(NumberedName("tok", i)));
  }
  auto rand_tok = [&]() { return ids[rng() % ids.size()]; };

  std::vector<TokenSeq> entities;
  for (size_t i = 0; i < num_entities; ++i) {
    TokenSeq e;
    const size_t len = 1 + rng() % 4;
    for (size_t j = 0; j < len; ++j) e.push_back(rand_tok());
    entities.push_back(std::move(e));
  }
  TokenSeq widener;
  for (size_t i = 0; i < widener_size; ++i) {
    widener.push_back(dict->GetOrAdd(NumberedName("wide", i)));
  }
  entities.push_back(std::move(widener));

  RuleSet rules;
  size_t added = 0, guard = 0;
  while (added < num_rules && ++guard < num_rules * 20) {
    TokenSeq lhs, rhs;
    const size_t ll = 1 + rng() % 2;
    const size_t rl = 1 + rng() % 3;
    for (size_t j = 0; j < ll; ++j) lhs.push_back(rand_tok());
    for (size_t j = 0; j < rl; ++j) rhs.push_back(rand_tok());
    if (rules.Add(std::move(lhs), std::move(rhs)).ok()) ++added;
  }

  LongWindowWorld world;
  for (size_t i = 0; i < doc_len; ++i) {
    if (rng() % 5 == 0) {
      const TokenSeq& e = entities[rng() % (entities.size() - 1)];
      world.doc_tokens.insert(world.doc_tokens.end(), e.begin(), e.end());
    } else {
      world.doc_tokens.push_back(rand_tok());
    }
  }

  DerivedDictionaryOptions opts;
  opts.expander.max_derived = 16;
  auto dd = DerivedDictionary::Build(std::move(entities), rules,
                                     std::move(dict), opts);
  world.dd = std::move(*dd);
  return world;
}

std::set<std::tuple<uint32_t, uint32_t, EntityId>> CandidateSet(
    const std::vector<Candidate>& cs) {
  std::set<std::tuple<uint32_t, uint32_t, EntityId>> out;
  for (const Candidate& c : cs) out.emplace(c.pos, c.len, c.origin);
  return out;
}

void ExpectSameMatches(const std::vector<Match>& expect,
                       const std::vector<Match>& got) {
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].token_begin, expect[i].token_begin);
    EXPECT_EQ(got[i].token_len, expect[i].token_len);
    EXPECT_EQ(got[i].entity, expect[i].entity);
    EXPECT_DOUBLE_EQ(got[i].score, expect[i].score);
  }
}

TEST(OraclePropertyTest, LongDocLongWindowsAllStrategiesIdentical) {
  const uint64_t seed = 0xA5EE5u;
  SCOPED_TRACE("seed=" + std::to_string(seed) + " (>10k-token document)");
  std::mt19937_64 rng(seed);
  auto world = MakeLongWindowWorld(rng, /*vocab=*/30, /*num_entities=*/12,
                                   /*num_rules=*/8, kLongDocLen,
                                   /*widener_size=*/200);
  const Document doc = Document::FromTokens(world.doc_tokens);
#ifdef NDEBUG
  ASSERT_GT(doc.size(), 10000u);  // planted entities inflate past doc_len
#endif

  const double tau = 0.7;
  const LengthRange win_len = SubstringLengthBounds(
      Metric::kJaccard, world.dd->min_set_size(), world.dd->max_set_size(),
      tau);
  ASSERT_GT(win_len.hi, 255u) << "widener failed to stretch the bounds";

  // Candidate-set equality across all four strategies — the layer the
  // collision bug lived in. One strategy's candidates then flow through
  // verification and must reproduce the wired-up pipeline's matches.
  auto index = ClusteredIndex::Build(*world.dd);
  auto simple = GenerateCandidates(FilterStrategy::kSimple, doc, *world.dd,
                                   *index, tau);
  const auto base = CandidateSet(simple.candidates);
  EXPECT_FALSE(base.empty());
  for (FilterStrategy s :
       {FilterStrategy::kSkip, FilterStrategy::kDynamic,
        FilterStrategy::kLazy}) {
    const auto got = GenerateCandidates(s, doc, *world.dd, *index, tau);
    EXPECT_EQ(CandidateSet(got.candidates), base)
        << "strategy=" << FilterStrategyName(s);
  }

  const auto expect = Sorted(VerifyCandidates(std::move(simple.candidates),
                                              doc, *world.dd, tau, {}));
  EXPECT_FALSE(expect.empty());
  auto built = Aeetes::FromDerivedDictionary(std::move(world.dd));
  ASSERT_TRUE(built.ok());
  ExtractScratch scratch;
  auto r = (*built)->ExtractIntoWithStrategy(scratch, doc, tau,
                                             FilterStrategy::kLazy);
  ASSERT_TRUE(r.ok());
  ExpectSameMatches(expect, Sorted(scratch.matches));
}

TEST(OraclePropertyTest, LongWindowsAgreeWithBruteForceOracle) {
  const double taus[] = {0.7, 0.85};
  for (int iter = 0; iter < 2; ++iter) {
    const uint64_t seed =
        0x0BACC1Eu + static_cast<uint64_t>(iter) * 0x9E3779B9u;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    auto world = MakeLongWindowWorld(rng, /*vocab=*/20, /*num_entities=*/8,
                                     /*num_rules=*/6, kOracleDocLen,
                                     /*widener_size=*/280);
    const Document doc = Document::FromTokens(world.doc_tokens);
    const double tau = taus[iter];
    const LengthRange win_len = SubstringLengthBounds(
        Metric::kJaccard, world.dd->min_set_size(), world.dd->max_set_size(),
        tau);
    ASSERT_GT(win_len.hi, 255u);

    const auto oracle = Sorted(BruteForceExtract(doc, *world.dd, tau));
    auto built = Aeetes::FromDerivedDictionary(std::move(world.dd));
    ASSERT_TRUE(built.ok());
    ExtractScratch scratch;
    for (FilterStrategy s : kAllStrategies) {
      SCOPED_TRACE(std::string("strategy=") + FilterStrategyName(s) +
                   " tau=" + std::to_string(tau));
      auto r = (*built)->ExtractIntoWithStrategy(scratch, doc, tau, s);
      ASSERT_TRUE(r.ok());
      ExpectSameMatches(oracle, Sorted(scratch.matches));
    }
  }
}

}  // namespace
}  // namespace aeetes
