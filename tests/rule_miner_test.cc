#include "src/synonym/rule_miner.h"

#include <gtest/gtest.h>

#include "src/core/aeetes.h"

namespace aeetes {
namespace {

TEST(RuleMinerTest, LearnsMiddleDifference) {
  // ("univ of washington", "university of washington") -> univ <=>
  // university.
  const std::vector<std::pair<TokenSeq, TokenSeq>> pairs = {
      {{1, 2, 3}, {9, 2, 3}},
  };
  const auto mined = MineRules(pairs);
  ASSERT_EQ(mined.size(), 1u);
  EXPECT_EQ(mined[0].lhs, (TokenSeq{1}));
  EXPECT_EQ(mined[0].rhs, (TokenSeq{9}));
  EXPECT_EQ(mined[0].support, 1u);
}

TEST(RuleMinerTest, StripsPrefixAndSuffix) {
  // Common prefix {5} and suffix {7, 8} stripped; middles {1} vs {2, 3}.
  const std::vector<std::pair<TokenSeq, TokenSeq>> pairs = {
      {{5, 1, 7, 8}, {5, 2, 3, 7, 8}},
  };
  const auto mined = MineRules(pairs);
  ASSERT_EQ(mined.size(), 1u);
  EXPECT_EQ(mined[0].lhs, (TokenSeq{1}));
  EXPECT_EQ(mined[0].rhs, (TokenSeq{2, 3}));
}

TEST(RuleMinerTest, IdenticalPairsYieldNothing) {
  const std::vector<std::pair<TokenSeq, TokenSeq>> pairs = {
      {{1, 2}, {1, 2}},
  };
  EXPECT_TRUE(MineRules(pairs).empty());
}

TEST(RuleMinerTest, PureInsertionsAreSkipped) {
  // {1,2} vs {1,9,2}: middle of the first side is empty.
  const std::vector<std::pair<TokenSeq, TokenSeq>> pairs = {
      {{1, 2}, {1, 9, 2}},
  };
  EXPECT_TRUE(MineRules(pairs).empty());
}

TEST(RuleMinerTest, SupportCountsAcrossPairsAndDirections) {
  const std::vector<std::pair<TokenSeq, TokenSeq>> pairs = {
      {{1, 5}, {9, 5}},
      {{7, 1}, {7, 9}},    // same diff {1} vs {9}, other context
      {{9, 4}, {1, 4}},    // reversed direction, canonicalized
      {{2, 5}, {3, 5}},    // a different rule
  };
  const auto mined = MineRules(pairs);
  ASSERT_EQ(mined.size(), 2u);
  EXPECT_EQ(mined[0].support, 3u);  // sorted by support
  EXPECT_EQ(mined[0].lhs, (TokenSeq{1}));
  EXPECT_EQ(mined[0].rhs, (TokenSeq{9}));
  EXPECT_EQ(mined[1].support, 1u);
}

TEST(RuleMinerTest, MinSupportThreshold) {
  const std::vector<std::pair<TokenSeq, TokenSeq>> pairs = {
      {{1, 5}, {9, 5}},
      {{2, 5}, {3, 5}},
      {{6, 1}, {6, 9}},
  };
  RuleMinerOptions opts;
  opts.min_support = 2;
  const auto mined = MineRules(pairs, opts);
  ASSERT_EQ(mined.size(), 1u);
  EXPECT_EQ(mined[0].support, 2u);
}

TEST(RuleMinerTest, MaxSideTokensBound) {
  const std::vector<std::pair<TokenSeq, TokenSeq>> pairs = {
      {{1, 2, 3, 4, 5, 9}, {7, 9}},
  };
  RuleMinerOptions opts;
  opts.max_side_tokens = 3;
  EXPECT_TRUE(MineRules(pairs, opts).empty());
  opts.max_side_tokens = 5;
  EXPECT_EQ(MineRules(pairs, opts).size(), 1u);
}

TEST(RuleMinerTest, ToRuleSetWithSupportWeights) {
  const std::vector<MinedRule> mined = {
      {{1}, {9}, 4},
      {{2}, {8}, 1},
  };
  auto rules = ToRuleSet(mined, /*support_weights=*/true);
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_DOUBLE_EQ(rules->rule(0).weight, 1.0);
  EXPECT_DOUBLE_EQ(rules->rule(1).weight, 0.25);
}

TEST(RuleMinerTest, EndToEndMinedRulesDriveExtraction) {
  // Learn "big apple <=> new york" from matched pairs, then extract with
  // the learned rules.
  Tokenizer tokenizer;
  auto dict = std::make_unique<TokenDictionary>();
  auto encode = [&](const std::string& s) {
    return dict->Encode(tokenizer.TokenizeToStrings(s));
  };
  const std::vector<std::pair<TokenSeq, TokenSeq>> pairs = {
      {encode("big apple pizza"), encode("new york pizza")},
      {encode("the big apple marathon"), encode("the new york marathon")},
  };
  const auto mined = MineRules(pairs);
  ASSERT_EQ(mined.size(), 1u);
  auto rules = ToRuleSet(mined);
  ASSERT_TRUE(rules.ok());

  const TokenSeq entity = encode("new york city");
  auto built = Aeetes::Build({entity}, *rules, std::move(dict));
  ASSERT_TRUE(built.ok());
  Document doc = (*built)->EncodeDocument("i love the big apple city");
  auto result = (*built)->Extract(doc, 0.9);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  EXPECT_DOUBLE_EQ(result->matches[0].score, 1.0);
}

}  // namespace
}  // namespace aeetes
