#include "src/core/candidate_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <tuple>

#include "src/baseline/brute_force.h"
#include "src/index/clustered_index.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::MakeRandomWorld;

std::set<std::tuple<uint32_t, uint32_t, EntityId>> CandidateSet(
    const std::vector<Candidate>& cs) {
  std::set<std::tuple<uint32_t, uint32_t, EntityId>> out;
  for (const Candidate& c : cs) out.emplace(c.pos, c.len, c.origin);
  return out;
}

constexpr FilterStrategy kAllStrategies[] = {
    FilterStrategy::kSimple, FilterStrategy::kSkip, FilterStrategy::kDynamic,
    FilterStrategy::kLazy};

TEST(FilterStrategyTest, Names) {
  EXPECT_STREQ(FilterStrategyName(FilterStrategy::kSimple), "Simple");
  EXPECT_STREQ(FilterStrategyName(FilterStrategy::kSkip), "Skip");
  EXPECT_STREQ(FilterStrategyName(FilterStrategy::kDynamic), "Dynamic");
  EXPECT_STREQ(FilterStrategyName(FilterStrategy::kLazy), "Lazy");
}

TEST(CandidateGeneratorTest, AllStrategiesProduceIdenticalCandidateSets) {
  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 25; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    for (double tau : {0.7, 0.8, 0.9}) {
      const auto simple = GenerateCandidates(FilterStrategy::kSimple, doc,
                                             *world.dd, *index, tau);
      const auto base = CandidateSet(simple.candidates);
      for (FilterStrategy s :
           {FilterStrategy::kSkip, FilterStrategy::kDynamic,
            FilterStrategy::kLazy}) {
        const auto got =
            GenerateCandidates(s, doc, *world.dd, *index, tau);
        EXPECT_EQ(CandidateSet(got.candidates), base)
            << "strategy=" << FilterStrategyName(s) << " tau=" << tau
            << " iter=" << iter;
      }
    }
  }
}

TEST(CandidateGeneratorTest, CandidatesAreCompleteVsBruteForce) {
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 20; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    for (double tau : {0.7, 0.85}) {
      const auto matches = BruteForceExtract(doc, *world.dd, tau);
      for (FilterStrategy s : kAllStrategies) {
        const auto got = GenerateCandidates(s, doc, *world.dd, *index, tau);
        const auto cset = CandidateSet(got.candidates);
        for (const Match& m : matches) {
          EXPECT_TRUE(cset.count(
              std::make_tuple(m.token_begin, m.token_len, m.entity)))
              << "missed true match at pos=" << m.token_begin
              << " len=" << m.token_len << " entity=" << m.entity
              << " strategy=" << FilterStrategyName(s) << " tau=" << tau;
        }
      }
    }
  }
}

TEST(CandidateGeneratorTest, BatchSkippingReducesAccessedEntries) {
  std::mt19937_64 rng(17);
  uint64_t simple_total = 0, skip_total = 0, dynamic_total = 0,
           lazy_total = 0;
  for (int iter = 0; iter < 10; ++iter) {
    auto world = MakeRandomWorld(rng, /*vocab=*/40, /*num_entities=*/20,
                                 /*num_rules=*/10, /*doc_len=*/120);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    const double tau = 0.8;
    simple_total += GenerateCandidates(FilterStrategy::kSimple, doc,
                                       *world.dd, *index, tau)
                        .stats.entries_accessed;
    skip_total += GenerateCandidates(FilterStrategy::kSkip, doc, *world.dd,
                                     *index, tau)
                      .stats.entries_accessed;
    dynamic_total += GenerateCandidates(FilterStrategy::kDynamic, doc,
                                        *world.dd, *index, tau)
                         .stats.entries_accessed;
    lazy_total += GenerateCandidates(FilterStrategy::kLazy, doc, *world.dd,
                                     *index, tau)
                      .stats.entries_accessed;
  }
  EXPECT_LE(skip_total, simple_total);
  EXPECT_LE(lazy_total, dynamic_total);
}

TEST(CandidateGeneratorTest, DynamicUsesIncrementalPrefixes) {
  std::mt19937_64 rng(19);
  auto world = MakeRandomWorld(rng);
  const Document doc = Document::FromTokens(world.doc_tokens);
  auto index = ClusteredIndex::Build(*world.dd);
  const auto simple =
      GenerateCandidates(FilterStrategy::kSimple, doc, *world.dd, *index, 0.8);
  const auto dynamic = GenerateCandidates(FilterStrategy::kDynamic, doc,
                                          *world.dd, *index, 0.8);
  // Simple rebuilds every prefix; Dynamic rebuilds one and updates the
  // rest.
  EXPECT_GT(simple.stats.prefix_rebuilds, dynamic.stats.prefix_rebuilds);
  EXPECT_EQ(dynamic.stats.prefix_rebuilds, 1u);
  EXPECT_GT(dynamic.stats.prefix_updates, 0u);
  EXPECT_EQ(simple.stats.prefix_updates, 0u);
}

TEST(CandidateGeneratorTest, CandidatesAreDeduped) {
  std::mt19937_64 rng(23);
  auto world = MakeRandomWorld(rng);
  const Document doc = Document::FromTokens(world.doc_tokens);
  auto index = ClusteredIndex::Build(*world.dd);
  for (FilterStrategy s : kAllStrategies) {
    const auto got =
        GenerateCandidates(s, doc, *world.dd, *index, 0.75);
    const auto set = CandidateSet(got.candidates);
    EXPECT_EQ(set.size(), got.candidates.size())
        << FilterStrategyName(s) << " emitted duplicate candidates";
  }
}

// Regression for the packed-candidate-key collision: the Lazy dedupe key
// used to be (pos << 38 | len << 30 | origin), giving the window length 8
// bits. Any window of 256+ tokens aliased a neighboring shorter window —
// key(p, 259, e) == key(p + 1, 3, e) — and one of the two candidates was
// silently dropped in release builds (debug builds tripped a DCHECK).
//
// This world makes both colliding windows real candidates of the same
// origin: a tiny entity {a, b, c}, a document cycling "a b c" (so every
// window of every length matches the entity's token set exactly), and a
// 300-distinct-token "widener" entity — absent from the document — whose
// only job is to stretch SubstringLengthBounds past 255.
TEST(CandidateGeneratorTest, LongWindowsSurviveDedupeNoKeyCollision) {
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId a = dict->GetOrAdd("a");
  const TokenId b = dict->GetOrAdd("b");
  const TokenId c = dict->GetOrAdd("c");
  TokenSeq widener;
  for (size_t i = 0; i < 300; ++i) {
    widener.push_back(dict->GetOrAdd(testutil::NumberedName("wide", i)));
  }
  std::vector<TokenSeq> entities = {{a, b, c}, widener};
  auto dd = DerivedDictionary::Build(std::move(entities), RuleSet{},
                                     std::move(dict), {});
  ASSERT_TRUE(dd.ok());

  TokenSeq doc_tokens;
  for (int i = 0; i < 90; ++i) doc_tokens.insert(doc_tokens.end(), {a, b, c});
  const Document doc = Document::FromTokens(doc_tokens);
  auto index = ClusteredIndex::Build(**dd);

  const auto simple = GenerateCandidates(FilterStrategy::kSimple, doc, **dd,
                                         *index, 0.85);
  uint32_t max_len = 0;
  for (const Candidate& cand : simple.candidates) {
    max_len = std::max(max_len, cand.len);
  }
  ASSERT_GE(max_len, 256u) << "world failed to produce 256+-token windows";

  for (FilterStrategy s :
       {FilterStrategy::kSkip, FilterStrategy::kDynamic,
        FilterStrategy::kLazy}) {
    const auto got = GenerateCandidates(s, doc, **dd, *index, 0.85);
    EXPECT_EQ(CandidateSet(got.candidates), CandidateSet(simple.candidates))
        << FilterStrategyName(s)
        << " lost candidates on 256+-token windows (key collision)";
  }
}

TEST(CandidateGeneratorTest, EmptyDocumentYieldsNothing) {
  std::mt19937_64 rng(29);
  auto world = MakeRandomWorld(rng);
  const Document doc = Document::FromTokens({});
  auto index = ClusteredIndex::Build(*world.dd);
  for (FilterStrategy s : kAllStrategies) {
    const auto got = GenerateCandidates(s, doc, *world.dd, *index, 0.8);
    EXPECT_TRUE(got.candidates.empty());
  }
}

TEST(CandidateGeneratorTest, DocumentOfOnlyUnknownTokensYieldsNothing) {
  std::mt19937_64 rng(31);
  auto world = MakeRandomWorld(rng);
  // Tokens far outside the interned vocabulary.
  TokenDictionary& dict = world.dd->mutable_token_dict();
  TokenSeq oov;
  for (int i = 0; i < 30; ++i) {
    oov.push_back(dict.GetOrAdd("zzz" + std::to_string(i)));
  }
  const Document doc = Document::FromTokens(oov);
  auto index = ClusteredIndex::Build(*world.dd);
  for (FilterStrategy s : kAllStrategies) {
    const auto got = GenerateCandidates(s, doc, *world.dd, *index, 0.8);
    EXPECT_TRUE(got.candidates.empty()) << FilterStrategyName(s);
  }
}

}  // namespace
}  // namespace aeetes
