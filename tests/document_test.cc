#include "src/core/document.h"

#include <gtest/gtest.h>

#include "src/common/hash.h"

namespace aeetes {
namespace {

TEST(DocumentTest, FromTextTracksSpans) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  const Document doc =
      Document::FromText("Hello, New York!", tokenizer, dict);
  ASSERT_EQ(doc.size(), 3u);
  EXPECT_EQ(doc.TokenSpan(0), (std::pair<size_t, size_t>{0, 5}));
  EXPECT_EQ(doc.SubstringText(1, 2), "New York");
  EXPECT_EQ(doc.SubstringText(0, 3), "Hello, New York");
}

TEST(DocumentTest, SubstringSpanClampsAtEnd) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  const Document doc = Document::FromText("a b c", tokenizer, dict);
  EXPECT_EQ(doc.SubstringText(1, 99), "b c");
  EXPECT_EQ(doc.SubstringText(5, 1), "");
  EXPECT_EQ(doc.SubstringText(0, 0), "");
}

TEST(DocumentTest, FromTokensHasNoSpans) {
  const Document doc = Document::FromTokens({1, 2, 3});
  EXPECT_EQ(doc.size(), 3u);
  EXPECT_EQ(doc.TokenSpan(0), (std::pair<size_t, size_t>{0, 0}));
  EXPECT_EQ(doc.SubstringText(0, 2), "");
  EXPECT_TRUE(doc.text().empty());
}

TEST(DocumentTest, DefaultIsEmpty) {
  const Document doc;
  EXPECT_EQ(doc.size(), 0u);
}

TEST(DocumentTest, InternsIntoSharedDictionary) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  const TokenId known = dict.GetOrAdd("york");
  const Document doc = Document::FromText("new york", tokenizer, dict);
  ASSERT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.tokens()[1], known);
  EXPECT_TRUE(dict.Lookup("new").has_value());
}

TEST(HashTest, IntVectorHashIsDeterministicAndOrderSensitive) {
  const std::vector<uint32_t> a = {1, 2, 3};
  const std::vector<uint32_t> b = {3, 2, 1};
  IntVectorHash<uint32_t> h;
  EXPECT_EQ(h(a), h(a));
  EXPECT_NE(h(a), h(b));  // order matters
  EXPECT_NE(h(a), h(std::vector<uint32_t>{1, 2}));
}

TEST(HashTest, HashCombineChanges) {
  size_t s1 = 0, s2 = 0;
  HashCombine(s1, 1);
  HashCombine(s2, 2);
  EXPECT_NE(s1, s2);
}

}  // namespace
}  // namespace aeetes
