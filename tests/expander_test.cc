#include "src/synonym/expander.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/synonym/applicability.h"

namespace aeetes {
namespace {

std::set<TokenSeq> TokenSets(const std::vector<DerivedForm>& forms) {
  std::set<TokenSeq> out;
  for (const auto& f : forms) out.insert(f.tokens);
  return out;
}

class ExpanderTest : public testing::Test {
 protected:
  std::vector<RuleGroup> Groups(const TokenSeq& entity) {
    return SelectNonConflictGroups(FindApplicableRules(entity, rules_));
  }
  RuleSet rules_;
};

TEST_F(ExpanderTest, NoRulesYieldsOriginOnly) {
  const TokenSeq e = {1, 2, 3};
  const auto forms = ExpandEntity(e, {});
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].tokens, e);
  EXPECT_TRUE(forms[0].applied.empty());
  EXPECT_DOUBLE_EQ(forms[0].weight, 1.0);
}

TEST_F(ExpanderTest, PaperUqAuExample) {
  // e3 = "UQ AU" with r1: UQ <=> University of Queensland and r3:
  // AU <=> Australia yields exactly the four derived entities of
  // Section 2.1.
  const TokenId kUq = 1, kAu = 2, kUniversity = 3, kOf = 4, kQueensland = 5,
                kAustralia = 6;
  ASSERT_TRUE(rules_.Add({kUq}, {kUniversity, kOf, kQueensland}).ok());
  ASSERT_TRUE(rules_.Add({kAu}, {kAustralia}).ok());
  const TokenSeq e = {kUq, kAu};
  const auto forms = ExpandEntity(e, Groups(e));
  const auto sets = TokenSets(forms);
  ASSERT_EQ(sets.size(), 4u);
  EXPECT_TRUE(sets.count({kUq, kAu}));
  EXPECT_TRUE(sets.count({kUniversity, kOf, kQueensland, kAu}));
  EXPECT_TRUE(sets.count({kUq, kAustralia}));
  EXPECT_TRUE(sets.count({kUniversity, kOf, kQueensland, kAustralia}));
}

TEST_F(ExpanderTest, SameSpanRulesAreMutuallyExclusive) {
  // Two rules with identical lhs: each derived form applies at most one.
  ASSERT_TRUE(rules_.Add({1}, {8}).ok());
  ASSERT_TRUE(rules_.Add({1}, {9}).ok());
  const TokenSeq e = {1, 2};
  const auto forms = ExpandEntity(e, Groups(e));
  const auto sets = TokenSets(forms);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_TRUE(sets.count({1, 2}));
  EXPECT_TRUE(sets.count({8, 2}));
  EXPECT_TRUE(sets.count({9, 2}));
}

TEST_F(ExpanderTest, BreadthFirstOrderKeepsSimplestUnderCap) {
  ASSERT_TRUE(rules_.Add({1}, {8}).ok());
  ASSERT_TRUE(rules_.Add({2}, {9}).ok());
  const TokenSeq e = {1, 2};
  ExpanderOptions opts;
  opts.max_derived = 3;  // origin + the two single-rule variants
  const auto forms = ExpandEntity(e, Groups(e), opts);
  ASSERT_EQ(forms.size(), 3u);
  EXPECT_EQ(forms[0].tokens, (TokenSeq{1, 2}));
  EXPECT_EQ(forms[0].applied.size(), 0u);
  EXPECT_EQ(forms[1].applied.size(), 1u);
  EXPECT_EQ(forms[2].applied.size(), 1u);
}

TEST_F(ExpanderTest, DedupesIdenticalDerivedForms) {
  // Both rules rewrite to the same token, producing identical forms.
  ASSERT_TRUE(rules_.Add({1}, {8}).ok());
  ASSERT_TRUE(rules_.Add({1, 2}, {8, 2}).ok());
  const TokenSeq e = {1, 2};
  const auto forms = ExpandEntity(e, Groups(e));
  const auto sets = TokenSets(forms);
  EXPECT_EQ(forms.size(), sets.size());  // no duplicates
}

TEST_F(ExpanderTest, WeightsMultiplyAcrossAppliedRules) {
  ASSERT_TRUE(rules_.Add({1}, {8}, 0.5).ok());
  ASSERT_TRUE(rules_.Add({2}, {9}, 0.4).ok());
  const TokenSeq e = {1, 2};
  const auto forms = ExpandEntity(e, Groups(e));
  double min_weight = 1.0;
  for (const auto& f : forms) min_weight = std::min(min_weight, f.weight);
  EXPECT_DOUBLE_EQ(min_weight, 0.2);  // both rules applied
}

TEST_F(ExpanderTest, CountMatchesProductFormula) {
  // Three disjoint groups with 1, 2, 3 rules: |D(e)| = 2 * 3 * 4 = 24.
  ASSERT_TRUE(rules_.Add({1}, {11}).ok());
  ASSERT_TRUE(rules_.Add({2}, {12}).ok());
  ASSERT_TRUE(rules_.Add({2}, {13}).ok());
  ASSERT_TRUE(rules_.Add({3}, {14}).ok());
  ASSERT_TRUE(rules_.Add({3}, {15}).ok());
  ASSERT_TRUE(rules_.Add({3}, {16}).ok());
  const TokenSeq e = {1, 2, 3};
  ExpanderOptions opts;
  opts.max_derived = 1000;
  const auto forms = ExpandEntity(e, Groups(e), opts);
  EXPECT_EQ(forms.size(), 24u);
}

TEST_F(ExpanderTest, CapIsRespected) {
  for (TokenId t = 1; t <= 8; ++t) {
    ASSERT_TRUE(rules_.Add({t}, {t + 100}).ok());
  }
  TokenSeq e;
  for (TokenId t = 1; t <= 8; ++t) e.push_back(t);
  ExpanderOptions opts;
  opts.max_derived = 20;
  const auto forms = ExpandEntity(e, Groups(e), opts);
  EXPECT_EQ(forms.size(), 20u);
}

TEST_F(ExpanderTest, ReplacementAtEntityBoundaries) {
  ASSERT_TRUE(rules_.Add({1}, {8, 9}).ok());  // head
  ASSERT_TRUE(rules_.Add({3}, {7}).ok());     // tail
  const TokenSeq e = {1, 2, 3};
  const auto sets = TokenSets(ExpandEntity(e, Groups(e)));
  EXPECT_TRUE(sets.count({8, 9, 2, 3}));
  EXPECT_TRUE(sets.count({1, 2, 7}));
  EXPECT_TRUE(sets.count({8, 9, 2, 7}));
}

}  // namespace
}  // namespace aeetes
