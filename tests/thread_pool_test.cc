#include "src/runtime/thread_pool.h"

#include <atomic>
#include <future>
#include <vector>

#include <gtest/gtest.h>

namespace aeetes {
namespace {

using Task = WorkStealingDeque::Task;

Task* MakeTask(std::atomic<int>* counter) {
  return new Task([counter] { counter->fetch_add(1); });
}

TEST(WorkStealingDequeTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(WorkStealingDeque(1).capacity(), 64u);
  EXPECT_EQ(WorkStealingDeque(64).capacity(), 64u);
  EXPECT_EQ(WorkStealingDeque(65).capacity(), 128u);
  EXPECT_EQ(WorkStealingDeque(1000).capacity(), 1024u);
}

TEST(WorkStealingDequeTest, PopIsLifoStealIsFifo) {
  WorkStealingDeque dq(64);
  std::atomic<int> counter{0};
  Task* a = MakeTask(&counter);
  Task* b = MakeTask(&counter);
  Task* c = MakeTask(&counter);
  ASSERT_TRUE(dq.Push(a));
  ASSERT_TRUE(dq.Push(b));
  ASSERT_TRUE(dq.Push(c));
  EXPECT_FALSE(dq.Empty());

  EXPECT_EQ(dq.Steal(), a);  // oldest first
  EXPECT_EQ(dq.Pop(), c);    // newest first
  EXPECT_EQ(dq.Pop(), b);
  EXPECT_EQ(dq.Pop(), nullptr);
  EXPECT_EQ(dq.Steal(), nullptr);
  EXPECT_TRUE(dq.Empty());
  delete a;
  delete b;
  delete c;
}

TEST(WorkStealingDequeTest, PushFailsWhenFull) {
  WorkStealingDeque dq(64);
  std::atomic<int> counter{0};
  std::vector<Task*> tasks;
  for (size_t i = 0; i < dq.capacity(); ++i) {
    tasks.push_back(MakeTask(&counter));
    ASSERT_TRUE(dq.Push(tasks.back()));
  }
  Task* extra = MakeTask(&counter);
  EXPECT_FALSE(dq.Push(extra));
  // Freeing one slot from the top makes room again.
  Task* stolen = dq.Steal();
  ASSERT_NE(stolen, nullptr);
  EXPECT_TRUE(dq.Push(extra));
  while (Task* t = dq.Pop()) delete t;
  delete stolen;
}

TEST(ThreadPoolTest, CreateValidatesOptions) {
  ThreadPoolOptions opts;
  opts.queue_capacity = 0;
  EXPECT_FALSE(ThreadPool::Create(opts).ok());
  opts.queue_capacity = 1;
  opts.num_threads = 100000;
  EXPECT_FALSE(ThreadPool::Create(opts).ok());
}

TEST(ThreadPoolTest, ZeroThreadsResolvesToHardware) {
  auto pool = ThreadPool::Create({});
  ASSERT_TRUE(pool.ok());
  EXPECT_GE((*pool)->num_threads(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPoolOptions opts;
  opts.num_threads = 4;
  opts.queue_capacity = 16;  // smaller than the task count: backpressure
  auto pool = ThreadPool::Create(opts);
  ASSERT_TRUE(pool.ok());
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*pool)->Submit([&counter] { counter.fetch_add(1); }).ok());
  }
  (*pool)->WaitIdle();
  EXPECT_EQ(counter.load(), 1000);
  // The pool is reusable after WaitIdle.
  ASSERT_TRUE((*pool)->Submit([&counter] { counter.fetch_add(1); }).ok());
  (*pool)->WaitIdle();
  EXPECT_EQ(counter.load(), 1001);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIdentifiesWorkers) {
  ThreadPoolOptions opts;
  opts.num_threads = 3;
  auto pool = ThreadPool::Create(opts);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ((*pool)->CurrentWorkerIndex(), ThreadPool::kNotAWorker);

  std::vector<std::atomic<int>> seen(3);
  for (auto& s : seen) s.store(0);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE((*pool)
                    ->Submit([&] {
                      const size_t w = (*pool)->CurrentWorkerIndex();
                      ASSERT_LT(w, size_t{3});
                      seen[w].fetch_add(1);
                    })
                    .ok());
  }
  (*pool)->WaitIdle();
  int total = 0;
  for (auto& s : seen) total += s.load();
  EXPECT_EQ(total, 300);
}

TEST(ThreadPoolTest, TrySubmitReportsFullQueue) {
  ThreadPoolOptions opts;
  opts.num_threads = 1;
  opts.queue_capacity = 1;
  auto pool = ThreadPool::Create(opts);
  ASSERT_TRUE(pool.ok());

  // Occupy the single worker so the injection queue stays ours.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  ASSERT_TRUE((*pool)->Submit([gate] { gate.wait(); }).ok());

  // Fill the queue, then observe the bound.
  Status st = Status::OK();
  bool filled = false;
  for (int i = 0; i < 64; ++i) {
    st = (*pool)->TrySubmit([] {});
    if (!st.ok()) {
      filled = true;
      break;
    }
  }
  EXPECT_TRUE(filled);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);

  release.set_value();
  (*pool)->WaitIdle();
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  auto pool = ThreadPool::Create({});
  ASSERT_TRUE(pool.ok());
  ASSERT_TRUE((*pool)->Shutdown().ok());
  EXPECT_EQ((*pool)->Submit([] {}).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*pool)->TrySubmit([] {}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*pool)->Shutdown().code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  ThreadPoolOptions opts;
  opts.num_threads = 2;
  opts.queue_capacity = 256;
  auto pool = ThreadPool::Create(opts);
  ASSERT_TRUE(pool.ok());
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*pool)->Submit([&counter] { counter.fetch_add(1); }).ok());
  }
  ASSERT_TRUE((*pool)->Shutdown().ok());
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ConcurrentProducers) {
  ThreadPoolOptions opts;
  opts.num_threads = 4;
  opts.queue_capacity = 32;
  auto pool = ThreadPool::Create(opts);
  ASSERT_TRUE(pool.ok());
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(
            (*pool)->Submit([&counter] { counter.fetch_add(1); }).ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  (*pool)->WaitIdle();
  EXPECT_EQ(counter.load(), 2000);
}

TEST(ThreadPoolTest, StatsCountSubmittedAndExecutedTasks) {
  ThreadPoolOptions opts;
  opts.num_threads = 3;
  auto pool = ThreadPool::Create(opts);
  ASSERT_TRUE(pool.ok());
  std::atomic<int> counter{0};
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*pool)->Submit([&counter] { counter.fetch_add(1); }).ok());
  }
  (*pool)->WaitIdle();
  const ThreadPool::Stats stats = (*pool)->GetStats();
  EXPECT_EQ(stats.num_threads, 3u);
  EXPECT_EQ(stats.submitted, 40u);
  EXPECT_EQ(stats.executed, 40u);
  EXPECT_EQ(stats.queue_depth, 0u);
  ASSERT_EQ(stats.worker_busy_fraction.size(), 3u);
  for (double fraction : stats.worker_busy_fraction) {
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
  }
}

TEST(ThreadPoolTest, PublishMetricsExportsRuntimeGauges) {
  ThreadPoolOptions opts;
  opts.num_threads = 2;
  auto pool = ThreadPool::Create(opts);
  ASSERT_TRUE(pool.ok());
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*pool)->Submit([&counter] { counter.fetch_add(1); }).ok());
  }
  (*pool)->WaitIdle();
  MetricsRegistry registry;
  (*pool)->PublishMetrics(registry);
  const Gauge* threads = registry.FindGauge("runtime.pool.threads");
  const Gauge* submitted = registry.FindGauge("runtime.pool.submitted");
  const Gauge* executed = registry.FindGauge("runtime.pool.executed");
  ASSERT_NE(threads, nullptr);
  ASSERT_NE(submitted, nullptr);
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(threads->value(), 2);
  EXPECT_EQ(submitted->value(), 10);
  EXPECT_EQ(executed->value(), 10);
  EXPECT_NE(registry.FindGauge("runtime.pool.steals"), nullptr);
  EXPECT_NE(registry.FindGauge("runtime.pool.queue_depth"), nullptr);
  ASSERT_NE(registry.FindGauge("runtime.worker.0.busy_ppm"), nullptr);
  ASSERT_NE(registry.FindGauge("runtime.worker.1.busy_ppm"), nullptr);
  // Republication is idempotent (GetOrRegister), refreshing in place.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*pool)->Submit([&counter] { counter.fetch_add(1); }).ok());
  }
  (*pool)->WaitIdle();
  (*pool)->PublishMetrics(registry);
  EXPECT_EQ(submitted->value(), 15);
}

}  // namespace
}  // namespace aeetes
