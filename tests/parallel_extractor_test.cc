#include "src/runtime/parallel_extractor.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/datagen/generator.h"
#include "src/datagen/profile.h"
#include "src/sim/similarity.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

/// Match::operator== ignores score/witness; byte-identical comparison
/// must not.
bool SameMatch(const Match& a, const Match& b) {
  return a.token_begin == b.token_begin && a.token_len == b.token_len &&
         a.entity == b.entity && a.score == b.score &&
         a.best_derived == b.best_derived;
}

void ExpectSameMatches(const std::vector<Match>& got,
                       const std::vector<Match>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(SameMatch(got[i], want[i]))
        << context << " match " << i << ": got (" << got[i].token_begin
        << "," << got[i].token_len << "," << got[i].entity << ","
        << got[i].score << ") want (" << want[i].token_begin << ","
        << want[i].token_len << "," << want[i].entity << ","
        << want[i].score << ")";
  }
}

bool SameFilterStats(const FilterStats& a, const FilterStats& b) {
  return a.windows == b.windows && a.substrings == b.substrings &&
         a.prefix_rebuilds == b.prefix_rebuilds &&
         a.prefix_updates == b.prefix_updates &&
         a.entries_accessed == b.entries_accessed &&
         a.length_groups_skipped == b.length_groups_skipped &&
         a.origin_groups_skipped == b.origin_groups_skipped &&
         a.candidates == b.candidates &&
         a.positional_pruned == b.positional_pruned;
}

class ParallelExtractorTest : public testing::Test {
 protected:
  void SetUp() override {
    DatasetProfile profile = PubMedLikeProfile();
    profile.num_entities = 150;
    profile.num_documents = 14;
    profile.num_rules = 60;
    profile.doc_len = 90;
    ds_ = GenerateDataset(profile);
    auto built = Aeetes::BuildFromText(ds_.entity_texts, ds_.rule_lines);
    ASSERT_TRUE(built.ok()) << built.status();
    aeetes_ = std::move(*built);
    for (const std::string& text : ds_.documents) {
      encoded_.push_back(aeetes_->EncodeDocument(text));
    }
  }

  SyntheticDataset ds_;
  std::unique_ptr<Aeetes> aeetes_;
  std::vector<Document> encoded_;
};

TEST_F(ParallelExtractorTest, MatchesSequentialLoopForEveryStrategy) {
  const FilterStrategy strategies[] = {
      FilterStrategy::kSimple, FilterStrategy::kSkip,
      FilterStrategy::kDynamic, FilterStrategy::kLazy};
  const double tau = 0.8;
  for (FilterStrategy strategy : strategies) {
    // Sequential reference: per-document results and aggregate stats.
    std::vector<Aeetes::ExtractionResult> serial;
    FilterStats serial_filter;
    VerifyStats serial_verify;
    uint64_t serial_matches = 0;
    for (const Document& doc : encoded_) {
      auto r = aeetes_->ExtractWithStrategy(doc, tau, strategy);
      ASSERT_TRUE(r.ok());
      serial_filter += r->filter_stats;
      serial_verify += r->verify_stats;
      serial_matches += r->matches.size();
      serial.push_back(std::move(*r));
    }

    for (size_t threads : {1u, 2u, 4u, 8u}) {
      const std::string context = std::string(FilterStrategyName(strategy)) +
                                  " threads=" + std::to_string(threads);
      ParallelExtractorOptions opts;
      opts.num_threads = threads;
      auto extractor = ParallelExtractor::Create(*aeetes_, opts);
      ASSERT_TRUE(extractor.ok()) << context;
      auto result =
          (*extractor)->ExtractAllWithStrategy(encoded_, tau, strategy);
      ASSERT_TRUE(result.ok()) << context;
      ASSERT_EQ(result->per_document.size(), encoded_.size()) << context;
      for (size_t d = 0; d < encoded_.size(); ++d) {
        const DocumentExtraction& de = result->per_document[d];
        EXPECT_EQ(de.doc, d) << context;
        EXPECT_EQ(de.chunks, 1u) << context;
        ExpectSameMatches(de.matches, serial[d].matches,
                          context + " doc=" + std::to_string(d));
        EXPECT_TRUE(SameFilterStats(de.filter_stats, serial[d].filter_stats))
            << context;
        EXPECT_EQ(de.verify_stats.verified, serial[d].verify_stats.verified)
            << context;
      }
      EXPECT_TRUE(SameFilterStats(result->filter_stats, serial_filter))
          << context;
      EXPECT_EQ(result->verify_stats.verified, serial_verify.verified)
          << context;
      EXPECT_EQ(result->verify_stats.matched, serial_verify.matched)
          << context;
      EXPECT_EQ(result->total_matches, serial_matches) << context;
    }
  }
}

TEST_F(ParallelExtractorTest, ExtractorIsReusableAndDeterministic) {
  ParallelExtractorOptions opts;
  opts.num_threads = 4;
  opts.queue_capacity = 4;  // force Submit-side backpressure
  auto extractor = ParallelExtractor::Create(*aeetes_, opts);
  ASSERT_TRUE(extractor.ok());
  auto first = (*extractor)->ExtractAll(encoded_, 0.8);
  ASSERT_TRUE(first.ok());
  auto second = (*extractor)->ExtractAll(encoded_, 0.8);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->per_document.size(), second->per_document.size());
  for (size_t d = 0; d < first->per_document.size(); ++d) {
    ExpectSameMatches(second->per_document[d].matches,
                      first->per_document[d].matches,
                      "doc=" + std::to_string(d));
  }
  EXPECT_EQ(first->total_matches, second->total_matches);
}

TEST_F(ParallelExtractorTest, PublishesRuntimeGaugesAfterEveryRun) {
  ParallelExtractorOptions opts;
  opts.num_threads = 2;
  auto extractor = ParallelExtractor::Create(*aeetes_, opts);
  ASSERT_TRUE(extractor.ok());
  auto result = (*extractor)->ExtractAll(encoded_, 0.8);
  ASSERT_TRUE(result.ok());

  // ExtractAll publishes the pool snapshot into the engine registry.
  const MetricsRegistry& registry = aeetes_->metrics();
  const Gauge* submitted = registry.FindGauge("runtime.pool.submitted");
  const Gauge* executed = registry.FindGauge("runtime.pool.executed");
  ASSERT_NE(submitted, nullptr);
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(submitted->value(),
            static_cast<int64_t>(encoded_.size()));  // one task per doc
  EXPECT_EQ(executed->value(), submitted->value());
  EXPECT_NE(registry.FindGauge("runtime.pool.threads"), nullptr);
  EXPECT_NE(registry.FindGauge("runtime.worker.0.busy_ppm"), nullptr);
  EXPECT_NE(registry.FindGauge("runtime.worker.1.busy_ppm"), nullptr);

  // PoolStats mirrors the gauges.
  const ThreadPool::Stats stats = (*extractor)->PoolStats();
  EXPECT_EQ(static_cast<int64_t>(stats.submitted), submitted->value());

  // A second run refreshes the same gauges in place.
  ASSERT_TRUE((*extractor)->ExtractAll(encoded_, 0.8).ok());
  EXPECT_EQ(submitted->value(),
            static_cast<int64_t>(2 * encoded_.size()));
}

TEST_F(ParallelExtractorTest, CollectsOneTracePerWorker) {
  ParallelExtractorOptions opts;
  opts.num_threads = 3;
  opts.collect_traces = true;
  auto extractor = ParallelExtractor::Create(*aeetes_, opts);
  ASSERT_TRUE(extractor.ok());
  auto result = (*extractor)->ExtractAll(encoded_, 0.8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->worker_traces.size(), 3u);
  size_t spans = 0;
  for (const TraceRecorder& tr : result->worker_traces) {
    spans += tr.spans().size();
  }
  EXPECT_GT(spans, 0u);
}

TEST_F(ParallelExtractorTest, EmptyCorpusAndBadThreshold) {
  auto extractor = ParallelExtractor::Create(*aeetes_, {});
  ASSERT_TRUE(extractor.ok());
  auto empty = (*extractor)->ExtractAll({}, 0.8);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->per_document.empty());
  EXPECT_EQ(empty->total_matches, 0u);
  EXPECT_FALSE((*extractor)->ExtractAll(encoded_, 0.0).ok());
  EXPECT_FALSE((*extractor)->ExtractAll(encoded_, 1.5).ok());
}

class ChunkingTest : public ParallelExtractorTest {
 protected:
  size_t MaxWindow(double tau) const {
    const DerivedDictionary& dd = aeetes_->derived_dictionary();
    return SubstringLengthBounds(aeetes_->options().metric,
                                 dd.min_set_size(), dd.max_set_size(), tau)
        .hi;
  }
};

TEST_F(ChunkingTest, LayoutCoversDocumentWithExactOverlap) {
  const double tau = 0.8;
  const size_t max_window = MaxWindow(tau);
  ASSERT_GT(max_window, 0u);
  const size_t limit = max_window + 3;
  ParallelExtractorOptions opts;
  opts.num_threads = 1;
  opts.max_document_tokens = limit;
  auto extractor = ParallelExtractor::Create(*aeetes_, opts);
  ASSERT_TRUE(extractor.ok());

  for (size_t n : {size_t{0}, limit - 1, limit, limit + 1, 3 * limit,
                   10 * limit + 7}) {
    const auto layout = (*extractor)->ChunkLayout(n, tau);
    ASSERT_FALSE(layout.empty()) << "n=" << n;
    if (n <= limit) {
      EXPECT_EQ(layout.size(), 1u) << "n=" << n;
      EXPECT_EQ(layout[0], (std::pair<size_t, size_t>{0, n}));
      continue;
    }
    EXPECT_EQ(layout.front().first, 0u);
    EXPECT_EQ(layout.back().first + layout.back().second, n) << "n=" << n;
    for (size_t c = 0; c < layout.size(); ++c) {
      EXPECT_LE(layout[c].second, limit) << "n=" << n << " chunk=" << c;
      if (c + 1 < layout.size()) {
        EXPECT_EQ(layout[c].second, limit);
        // Adjacent chunks share exactly max_window - 1 tokens, so every
        // window of <= max_window tokens fits inside one chunk.
        EXPECT_EQ(layout[c + 1].first,
                  layout[c].first + limit - (max_window - 1))
            << "n=" << n << " chunk=" << c;
      }
    }
  }
}

TEST_F(ChunkingTest, LimitBelowMaxWindowRunsWhole) {
  const double tau = 0.8;
  const size_t max_window = MaxWindow(tau);
  ASSERT_GT(max_window, 1u);
  ParallelExtractorOptions opts;
  opts.num_threads = 1;
  opts.max_document_tokens = max_window - 1;
  auto extractor = ParallelExtractor::Create(*aeetes_, opts);
  ASSERT_TRUE(extractor.ok());
  EXPECT_EQ((*extractor)->ChunkLayout(10 * max_window, tau).size(), 1u);
}

TEST_F(ChunkingTest, ChunkedIsBitIdenticalToUnchunked) {
  // One long document that genuinely splits: concatenate the corpus.
  std::string long_text;
  for (const std::string& text : ds_.documents) {
    if (!long_text.empty()) long_text += ' ';
    long_text += text;
  }
  std::vector<Document> docs;
  docs.push_back(aeetes_->EncodeDocument(long_text));

  for (double tau : {0.6, 0.8, 1.0}) {
    ParallelExtractorOptions whole_opts;
    whole_opts.num_threads = 2;
    auto whole = ParallelExtractor::Create(*aeetes_, whole_opts);
    ASSERT_TRUE(whole.ok());
    auto reference = (*whole)->ExtractAll(docs, tau);
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(reference->per_document[0].chunks, 1u);

    const size_t max_window = MaxWindow(tau);
    for (size_t limit :
         {max_window, max_window + 1, max_window + 9, 2 * max_window,
          docs[0].size() / 2}) {
      if (limit < max_window) continue;
      const std::string context = "tau=" + std::to_string(tau) +
                                  " limit=" + std::to_string(limit);
      ParallelExtractorOptions opts;
      opts.num_threads = 4;
      opts.max_document_tokens = limit;
      auto chunked = ParallelExtractor::Create(*aeetes_, opts);
      ASSERT_TRUE(chunked.ok()) << context;
      auto result = (*chunked)->ExtractAll(docs, tau);
      ASSERT_TRUE(result.ok()) << context;
      if (docs[0].size() > limit) {
        EXPECT_GT(result->per_document[0].chunks, 1u) << context;
      }
      ExpectSameMatches(result->per_document[0].matches,
                        reference->per_document[0].matches, context);
      EXPECT_EQ(result->total_matches, reference->total_matches) << context;
    }
  }
}

TEST(ChunkBoundaryTest, StraddlingMatchFoundExactlyOnce) {
  // A hand-built document where the only match straddles a chunk
  // boundary: chunk 0 is [0, 10), the entity sits at tokens [9, 12).
  const std::vector<std::string> entities = {"alpha beta gamma"};
  auto built = Aeetes::BuildFromText(entities, {});
  ASSERT_TRUE(built.ok()) << built.status();
  auto& aeetes = *built;

  std::string text;
  for (int i = 0; i < 9; ++i) text += "noise" + std::to_string(i) + " ";
  text += "alpha beta gamma";
  for (int i = 9; i < 15; ++i) text += " noise" + std::to_string(i);
  std::vector<Document> docs;
  docs.push_back(aeetes->EncodeDocument(text));
  ASSERT_EQ(docs[0].size(), 18u);

  ParallelExtractorOptions opts;
  opts.num_threads = 2;
  opts.max_document_tokens = 10;
  auto extractor = ParallelExtractor::Create(*aeetes, opts);
  ASSERT_TRUE(extractor.ok());

  // The layout must actually straddle: [9, 12) crosses the end of the
  // first chunk and lies inside the second.
  const auto layout = (*extractor)->ChunkLayout(docs[0].size(), 1.0);
  ASSERT_GT(layout.size(), 1u);
  ASSERT_LT(layout[0].first + layout[0].second, 12u);

  auto result = (*extractor)->ExtractAll(docs, 1.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_document[0].matches.size(), 1u);
  const Match& m = result->per_document[0].matches[0];
  EXPECT_EQ(m.token_begin, 9u);
  EXPECT_EQ(m.token_len, 3u);
  EXPECT_EQ(m.entity, 0u);
  EXPECT_EQ(result->total_matches, 1u);
}

}  // namespace
}  // namespace aeetes
