#include "src/index/compressed_index.h"

#include <gtest/gtest.h>

#include <random>

#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::MakeRandomWorld;

TEST(VarintTest, RoundTrip) {
  std::vector<uint8_t> buf;
  const std::vector<uint32_t> values = {0, 1, 127, 128, 300, 16384,
                                        0xffffffffu};
  for (uint32_t v : values) internal::EncodeVarint(v, &buf);
  const uint8_t* p = buf.data();
  const uint8_t* const end = buf.data() + buf.size();
  for (uint32_t v : values) {
    EXPECT_EQ(internal::DecodeVarint(p, end), v);
  }
  EXPECT_EQ(p, end);
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  internal::EncodeVarint(127, &buf);
  EXPECT_EQ(buf.size(), 1u);
  internal::EncodeVarint(128, &buf);
  EXPECT_EQ(buf.size(), 3u);  // 127 -> 1 byte, 128 -> 2 bytes
}

TEST(CompressedIndexTest, DecodesToExactlyThePlainIndex) {
  std::mt19937_64 rng(811);
  for (int iter = 0; iter < 20; ++iter) {
    auto world = MakeRandomWorld(rng);
    auto plain = ClusteredIndex::Build(*world.dd);
    auto packed =
        CompressedIndex::Build(*plain, world.dd->token_dict().size());
    ASSERT_EQ(packed->num_entries(), plain->num_entries());

    for (TokenId t = 0; t < world.dd->token_dict().size(); ++t) {
      const auto list = plain->list(t);
      const auto decoded = packed->Decode(t);
      ASSERT_EQ(decoded.size(), static_cast<size_t>(list.end - list.begin))
          << "token " << t;
      for (uint32_t g = list.begin; g < list.end; ++g) {
        const LengthGroup& lg = plain->length_groups()[g];
        const auto& dlg = decoded[g - list.begin];
        ASSERT_EQ(dlg.length, lg.length);
        ASSERT_EQ(dlg.origin_groups.size(),
                  static_cast<size_t>(lg.end - lg.begin));
        for (uint32_t og = lg.begin; og < lg.end; ++og) {
          const OriginGroup& origin_group = plain->origin_groups()[og];
          const auto& dog = dlg.origin_groups[og - lg.begin];
          ASSERT_EQ(dog.origin, origin_group.origin);
          ASSERT_EQ(dog.entries.size(),
                    static_cast<size_t>(origin_group.end -
                                        origin_group.begin));
          for (uint32_t i = origin_group.begin; i < origin_group.end; ++i) {
            const PostingEntry& e = plain->entries()[i];
            const PostingEntry& d = dog.entries[i - origin_group.begin];
            EXPECT_EQ(d.derived, e.derived);
            EXPECT_EQ(d.pos, e.pos);
          }
        }
      }
    }
  }
}

TEST(CompressedIndexTest, UsesLessMemoryThanPlain) {
  std::mt19937_64 rng(821);
  auto world = MakeRandomWorld(rng, /*vocab=*/100, /*num_entities=*/200,
                               /*num_rules=*/50, /*doc_len=*/10);
  auto plain = ClusteredIndex::Build(*world.dd);
  auto packed = CompressedIndex::Build(*plain, world.dd->token_dict().size());
  EXPECT_LT(packed->MemoryBytes(), plain->MemoryBytes());
}

TEST(CompressedIndexTest, UnknownTokensDecodeEmpty) {
  std::mt19937_64 rng(823);
  auto world = MakeRandomWorld(rng);
  auto packed = CompressedIndex::Build(*world.dd);
  EXPECT_TRUE(packed->Decode(999999).empty());
}

TEST(CompressedIndexTest, ScanVisitsEveryPostingOnce) {
  std::mt19937_64 rng(827);
  auto world = MakeRandomWorld(rng);
  auto packed = CompressedIndex::Build(*world.dd);
  size_t visited = 0;
  for (TokenId t = 0; t < world.dd->token_dict().size(); ++t) {
    packed->Scan(t, [&](uint32_t, EntityId, DerivedId, uint32_t) {
      ++visited;
    });
  }
  EXPECT_EQ(visited, packed->num_entries());
}

TEST(VarintCheckedTest, RoundTripsAndConsumesExactly) {
  std::vector<uint8_t> buf;
  const std::vector<uint32_t> values = {0, 1, 127, 128, 300, 16384,
                                        0xffffffffu};
  for (uint32_t v : values) internal::EncodeVarint(v, &buf);
  const uint8_t* p = buf.data();
  const uint8_t* const end = buf.data() + buf.size();
  for (uint32_t v : values) {
    uint32_t decoded = 0;
    ASSERT_TRUE(internal::DecodeVarintChecked(p, end, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(p, end);
}

TEST(VarintCheckedTest, RejectsTruncationInsteadOfReadingPastEnd) {
  std::vector<uint8_t> buf;
  internal::EncodeVarint(0xffffffffu, &buf);  // five bytes
  for (size_t keep = 0; keep < buf.size(); ++keep) {
    const uint8_t* p = buf.data();
    uint32_t v = 0;
    EXPECT_FALSE(internal::DecodeVarintChecked(p, p + keep, &v))
        << "prefix of " << keep << " bytes decoded";
  }
}

TEST(VarintCheckedTest, RejectsEncodingsWiderThan32Bits) {
  // Five continuation bytes: the sixth byte would need shift 35.
  const std::vector<uint8_t> endless = {0xff, 0xff, 0xff, 0xff, 0xff, 0x01};
  const uint8_t* p = endless.data();
  uint32_t v = 0;
  EXPECT_FALSE(
      internal::DecodeVarintChecked(p, p + endless.size(), &v));
  // A fifth byte carrying bits beyond 2^32 (value overflow).
  const std::vector<uint8_t> wide = {0x80, 0x80, 0x80, 0x80, 0x7f};
  p = wide.data();
  EXPECT_FALSE(internal::DecodeVarintChecked(p, p + wide.size(), &v));
  // The widest legal value still decodes.
  std::vector<uint8_t> max;
  internal::EncodeVarint(0xffffffffu, &max);
  p = max.data();
  ASSERT_TRUE(internal::DecodeVarintChecked(p, p + max.size(), &v));
  EXPECT_EQ(v, 0xffffffffu);
}

TEST(ValidatePostingStreamTest, AcceptsEveryStreamBuildProduces) {
  std::mt19937_64 rng(829);
  auto world = MakeRandomWorld(rng);
  auto packed = CompressedIndex::Build(*world.dd);
  const Status st = packed->Validate();
  EXPECT_TRUE(st.ok()) << st;
}

TEST(ValidatePostingStreamTest, RejectsHostileStreams) {
  // Well-formed: one length group, one origin group, one entry.
  std::vector<uint8_t> good;
  for (uint32_t v : {1u, 3u, 1u, 0u, 1u, 2u, 5u}) {
    internal::EncodeVarint(v, &good);
  }
  EXPECT_TRUE(
      internal::ValidatePostingStream(good.data(), good.size()).ok());

  // Every strict prefix is truncated mid-grammar.
  for (size_t keep = 1; keep < good.size(); ++keep) {
    EXPECT_FALSE(
        internal::ValidatePostingStream(good.data(), keep).ok())
        << "prefix " << keep;
  }

  // Trailing bytes after a complete stream.
  std::vector<uint8_t> trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(
      internal::ValidatePostingStream(trailing.data(), trailing.size())
          .ok());

  // A count promising more data than the stream holds.
  std::vector<uint8_t> hungry;
  internal::EncodeVarint(200, &hungry);  // 200 length groups, no bytes
  EXPECT_FALSE(
      internal::ValidatePostingStream(hungry.data(), hungry.size()).ok());
}

}  // namespace
}  // namespace aeetes
