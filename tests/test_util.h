#ifndef AEETES_TESTS_TEST_UTIL_H_
#define AEETES_TESTS_TEST_UTIL_H_

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/core/aeetes.h"
#include "src/core/document.h"
#include "src/synonym/derived_dictionary.h"

namespace aeetes {
namespace testutil {

/// Builds "<prefix><i>". Written with += rather than std::string
/// operator+ to dodge a spurious GCC 12 -Wrestrict warning that the
/// inlined temporary-string concatenation triggers at -O2.
inline std::string NumberedName(const char* prefix, size_t i) {
  std::string name(prefix);
  name += std::to_string(i);
  return name;
}

/// A randomly generated AEES world for property tests: a token universe,
/// random entities, random synonym rules, and documents that embed entity
/// variants among noise tokens.
struct RandomWorld {
  std::unique_ptr<DerivedDictionary> dd;
  TokenSeq doc_tokens;
};

inline RandomWorld MakeRandomWorld(std::mt19937_64& rng,
                                   size_t vocab = 30,
                                   size_t num_entities = 12,
                                   size_t num_rules = 8,
                                   size_t doc_len = 80) {
  auto dict = std::make_unique<TokenDictionary>();
  std::vector<TokenId> ids;
  for (size_t i = 0; i < vocab; ++i) {
    ids.push_back(dict->GetOrAdd(NumberedName("tok", i)));
  }
  auto rand_tok = [&]() { return ids[rng() % ids.size()]; };

  std::vector<TokenSeq> entities;
  for (size_t i = 0; i < num_entities; ++i) {
    TokenSeq e;
    const size_t len = 1 + rng() % 4;
    for (size_t j = 0; j < len; ++j) e.push_back(rand_tok());
    entities.push_back(std::move(e));
  }

  RuleSet rules;
  size_t added = 0, guard = 0;
  while (added < num_rules && ++guard < num_rules * 20) {
    TokenSeq lhs, rhs;
    const size_t ll = 1 + rng() % 2;
    const size_t rl = 1 + rng() % 3;
    for (size_t j = 0; j < ll; ++j) lhs.push_back(rand_tok());
    for (size_t j = 0; j < rl; ++j) rhs.push_back(rand_tok());
    if (rules.Add(std::move(lhs), std::move(rhs)).ok()) ++added;
  }

  RandomWorld world;
  // Documents mix noise with planted (possibly rule-rewritten) entities so
  // matches actually occur.
  for (size_t i = 0; i < doc_len; ++i) {
    if (rng() % 5 == 0) {
      const TokenSeq& e = entities[rng() % entities.size()];
      world.doc_tokens.insert(world.doc_tokens.end(), e.begin(), e.end());
    } else {
      world.doc_tokens.push_back(rand_tok());
    }
  }

  DerivedDictionaryOptions opts;
  opts.expander.max_derived = 16;
  auto dd = DerivedDictionary::Build(std::move(entities), rules,
                                     std::move(dict), opts);
  world.dd = std::move(*dd);
  return world;
}

/// Sorts matches by (begin, len, entity) for set comparisons.
inline std::vector<Match> Sorted(std::vector<Match> ms) {
  std::sort(ms.begin(), ms.end(), [](const Match& a, const Match& b) {
    if (a.token_begin != b.token_begin) return a.token_begin < b.token_begin;
    if (a.token_len != b.token_len) return a.token_len < b.token_len;
    return a.entity < b.entity;
  });
  return ms;
}

}  // namespace testutil
}  // namespace aeetes

#endif  // AEETES_TESTS_TEST_UTIL_H_
