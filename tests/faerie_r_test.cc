#include "src/baseline/faerie_r.h"

#include <gtest/gtest.h>

#include <random>

#include "src/baseline/brute_force.h"
#include "src/core/candidate_generator.h"
#include "src/core/verifier.h"
#include "src/index/clustered_index.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::MakeRandomWorld;
using testutil::Sorted;

TEST(FaerieRTest, MatchesMapToOriginEntities) {
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId uq = dict->GetOrAdd("uq");
  const TokenId au = dict->GetOrAdd("au");
  const TokenId australia = dict->GetOrAdd("australia");
  RuleSet rules;
  ASSERT_TRUE(rules.Add({au}, {australia}).ok());
  auto dd = DerivedDictionary::Build({{uq, au}}, rules, std::move(dict));
  ASSERT_TRUE(dd.ok());
  auto fr = FaerieR::Build(**dd);
  ASSERT_TRUE(fr.ok());
  const Document doc = Document::FromTokens({uq, australia});
  const auto matches = (*fr)->Extract(doc, 0.9);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].entity, 0u);  // origin, not the derived variant
  EXPECT_DOUBLE_EQ(matches[0].score, 1.0);
}

TEST(FaerieRTest, DedupesMultipleDerivedWitnesses) {
  // Two rules rewriting to overlapping forms make several derived entities
  // match the same window; FaerieR must report the origin once.
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId a = dict->GetOrAdd("a");
  const TokenId b = dict->GetOrAdd("b");
  const TokenId c = dict->GetOrAdd("c");
  RuleSet rules;
  ASSERT_TRUE(rules.Add({a}, {c}).ok());
  auto dd = DerivedDictionary::Build({{a, b}}, rules, std::move(dict));
  ASSERT_TRUE(dd.ok());
  auto fr = FaerieR::Build(**dd);
  ASSERT_TRUE(fr.ok());
  // Window {a, b, c}: matches both derived forms at tau = 0.6 (2/3).
  const Document doc = Document::FromTokens({a, b, c});
  const auto matches = (*fr)->Extract(doc, 0.6);
  size_t full_window = 0;
  for (const Match& m : matches) {
    if (m.token_len == 3) ++full_window;
  }
  EXPECT_EQ(full_window, 1u);
}

/// FaerieR solves the same AEES problem as Aeetes, so their (substring,
/// origin) result sets must coincide exactly — the strongest end-to-end
/// cross-validation available.
TEST(FaerieRPropertyTest, AgreesWithAeetesPipeline) {
  std::mt19937_64 rng(97);
  for (int iter = 0; iter < 25; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    auto fr = FaerieR::Build(*world.dd);
    ASSERT_TRUE(fr.ok());
    for (double tau : {0.7, 0.8, 0.9}) {
      auto gen = GenerateCandidates(FilterStrategy::kLazy, doc, *world.dd,
                                    *index, tau);
      const auto aeetes_matches = Sorted(VerifyCandidates(
          std::move(gen.candidates), doc, *world.dd, tau, {}));
      const auto faerie_matches = Sorted((*fr)->Extract(doc, tau));
      ASSERT_EQ(faerie_matches.size(), aeetes_matches.size())
          << "iter=" << iter << " tau=" << tau;
      for (size_t i = 0; i < faerie_matches.size(); ++i) {
        EXPECT_EQ(faerie_matches[i].token_begin,
                  aeetes_matches[i].token_begin);
        EXPECT_EQ(faerie_matches[i].token_len, aeetes_matches[i].token_len);
        EXPECT_EQ(faerie_matches[i].entity, aeetes_matches[i].entity);
        EXPECT_NEAR(faerie_matches[i].score, aeetes_matches[i].score, 1e-12);
      }
    }
  }
}

TEST(FaerieRPropertyTest, AgreesWithBruteForceOracle) {
  std::mt19937_64 rng(101);
  for (int iter = 0; iter < 15; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto fr = FaerieR::Build(*world.dd);
    ASSERT_TRUE(fr.ok());
    const double tau = 0.8;
    const auto oracle = Sorted(BruteForceExtract(doc, *world.dd, tau));
    const auto got = Sorted((*fr)->Extract(doc, tau));
    ASSERT_EQ(got.size(), oracle.size()) << "iter=" << iter;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].token_begin, oracle[i].token_begin);
      EXPECT_EQ(got[i].entity, oracle[i].entity);
    }
  }
}

}  // namespace
}  // namespace aeetes
