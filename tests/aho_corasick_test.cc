#include "src/baseline/aho_corasick.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <tuple>

namespace aeetes {
namespace {

std::set<std::tuple<int, size_t, size_t>> HitSet(
    const std::vector<AhoCorasick::Hit>& hits) {
  std::set<std::tuple<int, size_t, size_t>> out;
  for (const auto& h : hits) out.emplace(h.pattern, h.begin, h.len);
  return out;
}

TEST(AhoCorasickTest, SinglePattern) {
  AhoCorasick ac;
  const int p = ac.AddPattern({1, 2});
  ac.Build();
  const auto hits = ac.FindAll({0, 1, 2, 3, 1, 2});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].pattern, p);
  EXPECT_EQ(hits[0].begin, 1u);
  EXPECT_EQ(hits[1].begin, 4u);
}

TEST(AhoCorasickTest, OverlappingPatterns) {
  AhoCorasick ac;
  const int a = ac.AddPattern({1, 2, 3});
  const int b = ac.AddPattern({2, 3});
  const int c = ac.AddPattern({3});
  ac.Build();
  const auto hits = HitSet(ac.FindAll({1, 2, 3}));
  EXPECT_TRUE(hits.count({a, 0, 3}));
  EXPECT_TRUE(hits.count({b, 1, 2}));
  EXPECT_TRUE(hits.count({c, 2, 1}));
  EXPECT_EQ(hits.size(), 3u);
}

TEST(AhoCorasickTest, SharedPrefixes) {
  AhoCorasick ac;
  const int a = ac.AddPattern({5, 6});
  const int b = ac.AddPattern({5, 7});
  ac.Build();
  const auto hits = HitSet(ac.FindAll({5, 6, 5, 7}));
  EXPECT_TRUE(hits.count({a, 0, 2}));
  EXPECT_TRUE(hits.count({b, 2, 2}));
}

TEST(AhoCorasickTest, DuplicatePatternReportsBothIds) {
  AhoCorasick ac;
  const int a = ac.AddPattern({9});
  const int b = ac.AddPattern({9});
  ac.Build();
  const auto hits = HitSet(ac.FindAll({9}));
  EXPECT_TRUE(hits.count({a, 0, 1}));
  EXPECT_TRUE(hits.count({b, 0, 1}));
}

TEST(AhoCorasickTest, EmptyPatternIgnored) {
  AhoCorasick ac;
  EXPECT_EQ(ac.AddPattern({}), -1);
  ac.AddPattern({1});
  ac.Build();
  EXPECT_EQ(ac.num_patterns(), 1u);
}

TEST(AhoCorasickTest, NoMatches) {
  AhoCorasick ac;
  ac.AddPattern({1, 2});
  ac.Build();
  EXPECT_TRUE(ac.FindAll({2, 1, 2, 1}).size() == 1);  // only at pos 1
  EXPECT_TRUE(ac.FindAll({3, 4, 5}).empty());
  EXPECT_TRUE(ac.FindAll({}).empty());
}

TEST(AhoCorasickPropertyTest, AgreesWithNaiveSearch) {
  std::mt19937_64 rng(71);
  for (int iter = 0; iter < 60; ++iter) {
    AhoCorasick ac;
    const size_t vocab = 4;
    std::vector<TokenSeq> patterns;
    const size_t np = 1 + rng() % 6;
    for (size_t i = 0; i < np; ++i) {
      TokenSeq p;
      const size_t len = 1 + rng() % 4;
      for (size_t j = 0; j < len; ++j) p.push_back(rng() % vocab);
      ac.AddPattern(p);
      patterns.push_back(std::move(p));
    }
    ac.Build();
    TokenSeq text;
    const size_t n = rng() % 60;
    for (size_t i = 0; i < n; ++i) text.push_back(rng() % vocab);

    std::set<std::tuple<int, size_t, size_t>> naive;
    for (size_t pid = 0; pid < patterns.size(); ++pid) {
      const TokenSeq& p = patterns[pid];
      for (size_t i = 0; i + p.size() <= text.size(); ++i) {
        if (std::equal(p.begin(), p.end(), text.begin() + i)) {
          naive.emplace(static_cast<int>(pid), i, p.size());
        }
      }
    }
    EXPECT_EQ(HitSet(ac.FindAll(text)), naive) << "iter=" << iter;
  }
}

}  // namespace
}  // namespace aeetes
