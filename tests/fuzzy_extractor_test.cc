#include "src/baseline/fuzzy_extractor.h"

#include <gtest/gtest.h>

#include <memory>

namespace aeetes {
namespace {

class FuzzyExtractorTest : public testing::Test {
 protected:
  void SetUp() override {
    dict_ = std::make_unique<TokenDictionary>();
    univ_ = dict_->GetOrAdd("university");
    auckland_ = dict_->GetOrAdd("auckland");
    aukland_ = dict_->GetOrAdd("aukland");  // typo form
    noise_ = dict_->GetOrAdd("noise");
    for (TokenId t : {univ_, auckland_}) {
      ASSERT_TRUE(dict_->AddFrequency(t).ok());
    }
    dict_->Freeze();
  }

  std::unique_ptr<TokenDictionary> dict_;
  TokenId univ_, auckland_, aukland_, noise_;
};

TEST_F(FuzzyExtractorTest, FindsExactMentions) {
  FuzzyExtractor fx({{univ_, auckland_}}, *dict_);
  const Document doc = Document::FromTokens({noise_, univ_, auckland_});
  const auto matches = fx.Extract(doc, 0.9);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].token_begin, 1u);
  EXPECT_DOUBLE_EQ(matches[0].score, 1.0);
}

TEST_F(FuzzyExtractorTest, RecoversTypoMentionsJaccardWouldMiss) {
  FuzzyExtractor fx({{univ_, auckland_}}, *dict_);
  const Document doc = Document::FromTokens({univ_, aukland_, noise_});
  // Plain Jaccard of {university, aukland} vs {university, auckland} is
  // 1/3 < 0.7; FJ lifts it via the typo edge (1 + 0.875) / (4 - 1.875).
  const auto matches = fx.Extract(doc, 0.7);
  bool found = false;
  for (const Match& m : matches) {
    if (m.token_begin == 0 && m.token_len == 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(FuzzyExtractorTest, RespectsThreshold) {
  FuzzyExtractor fx({{univ_, auckland_}}, *dict_);
  const Document doc = Document::FromTokens({univ_, noise_});
  // {university, noise}: only one exact token, FJ = 1/3.
  const auto matches = fx.Extract(doc, 0.7);
  for (const Match& m : matches) {
    EXPECT_FALSE(m.token_begin == 0 && m.token_len == 2);
  }
}

TEST_F(FuzzyExtractorTest, NoSynonymAwareness) {
  // FJ cannot bridge "big apple" to "new york" — that requires rules.
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId big = dict->GetOrAdd("big");
  const TokenId apple = dict->GetOrAdd("apple");
  const TokenId nw = dict->GetOrAdd("new");
  const TokenId york = dict->GetOrAdd("york");
  for (TokenId t : {nw, york}) ASSERT_TRUE(dict->AddFrequency(t).ok());
  dict->Freeze();
  FuzzyExtractor fx({{nw, york}}, *dict);
  const Document doc = Document::FromTokens({big, apple});
  EXPECT_TRUE(fx.Extract(doc, 0.7).empty());
}

}  // namespace
}  // namespace aeetes
