// Full-pipeline property tests parameterized over every supported metric:
// the filter + verify pipeline must agree with the brute-force oracle for
// Cosine, Dice and Overlap exactly as it does for Jaccard, across all four
// filtering strategies.

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "src/baseline/brute_force.h"
#include "src/core/candidate_generator.h"
#include "src/core/verifier.h"
#include "src/index/clustered_index.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::MakeRandomWorld;
using testutil::Sorted;

class MetricPipelineTest
    : public testing::TestWithParam<std::tuple<Metric, FilterStrategy>> {};

TEST_P(MetricPipelineTest, PipelineEqualsBruteForceOracle) {
  const auto [metric, strategy] = GetParam();
  std::mt19937_64 rng(1009 + static_cast<uint64_t>(metric) * 31 +
                      static_cast<uint64_t>(strategy));
  for (int iter = 0; iter < 12; ++iter) {
    auto world = MakeRandomWorld(rng, /*vocab=*/25, /*num_entities=*/10,
                                 /*num_rules=*/6, /*doc_len=*/60);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    for (double tau : {0.75, 0.9}) {
      JaccArOptions jopts;
      jopts.metric = metric;
      const auto oracle =
          Sorted(BruteForceExtract(doc, *world.dd, tau, jopts));
      auto gen =
          GenerateCandidates(strategy, doc, *world.dd, *index, tau, metric);
      const auto got = Sorted(VerifyCandidates(std::move(gen.candidates),
                                               doc, *world.dd, tau, jopts));
      ASSERT_EQ(got.size(), oracle.size())
          << MetricName(metric) << "/" << FilterStrategyName(strategy)
          << " tau=" << tau << " iter=" << iter;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], oracle[i]);
        EXPECT_DOUBLE_EQ(got[i].score, oracle[i].score);
      }
    }
  }
}

TEST_P(MetricPipelineTest, PositionalFilterStaysSoundPerMetric) {
  const auto [metric, strategy] = GetParam();
  std::mt19937_64 rng(2027 + static_cast<uint64_t>(metric) * 17 +
                      static_cast<uint64_t>(strategy));
  CandidateGenOptions with;
  with.positional_filter = true;
  for (int iter = 0; iter < 8; ++iter) {
    auto world = MakeRandomWorld(rng, /*vocab=*/25, /*num_entities=*/10,
                                 /*num_rules=*/6, /*doc_len=*/50);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    const double tau = 0.8;
    JaccArOptions jopts;
    jopts.metric = metric;
    const auto oracle = Sorted(BruteForceExtract(doc, *world.dd, tau, jopts));
    auto gen = GenerateCandidates(strategy, doc, *world.dd, *index, tau,
                                  metric, with);
    const auto got = Sorted(VerifyCandidates(std::move(gen.candidates), doc,
                                             *world.dd, tau, jopts));
    EXPECT_EQ(got, oracle) << MetricName(metric) << "/"
                           << FilterStrategyName(strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetricsAndStrategies, MetricPipelineTest,
    testing::Combine(testing::Values(Metric::kJaccard, Metric::kCosine,
                                     Metric::kDice, Metric::kOverlap),
                     testing::Values(FilterStrategy::kSimple,
                                     FilterStrategy::kSkip,
                                     FilterStrategy::kDynamic,
                                     FilterStrategy::kLazy)),
    [](const auto& param_info) {
      return std::string(MetricName(std::get<0>(param_info.param))) +
             FilterStrategyName(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace aeetes
