// Tests for the perf_event_open wrapper. The hardware backend is
// environment-dependent (containers and CI runners usually expose no perf
// events), so these tests pin down the contract both ways: a disabled or
// unsupported group degrades to the null backend — invalid zero samples,
// never errors — and a working group produces monotone counters.

#include "src/common/perf_counters.h"

#include "gtest/gtest.h"

namespace aeetes {
namespace {

TEST(PerfSampleTest, DefaultIsInvalidAndZero) {
  PerfSample sample;
  EXPECT_FALSE(sample.valid);
  EXPECT_EQ(sample.cycles, 0u);
  EXPECT_EQ(sample.instructions, 0u);
  EXPECT_EQ(sample.cache_misses, 0u);
  EXPECT_EQ(sample.branch_misses, 0u);
}

TEST(PerfSampleTest, DeltaSinceSubtractsFieldwise) {
  PerfSample before;
  before.valid = true;
  before.cycles = 100;
  before.instructions = 200;
  before.cache_misses = 10;
  before.branch_misses = 5;
  PerfSample after = before;
  after.cycles = 350;
  after.instructions = 900;
  after.cache_misses = 12;
  after.branch_misses = 5;
  const PerfSample delta = after.DeltaSince(before);
  EXPECT_TRUE(delta.valid);
  EXPECT_EQ(delta.cycles, 250u);
  EXPECT_EQ(delta.instructions, 700u);
  EXPECT_EQ(delta.cache_misses, 2u);
  EXPECT_EQ(delta.branch_misses, 0u);
}

TEST(PerfSampleTest, DeltaOfInvalidSamplesIsInvalid) {
  PerfSample valid;
  valid.valid = true;
  PerfSample invalid;
  EXPECT_FALSE(valid.DeltaSince(invalid).valid);
  EXPECT_FALSE(invalid.DeltaSince(valid).valid);
  EXPECT_FALSE(invalid.DeltaSince(invalid).valid);
}

TEST(PerfCounterGroupTest, ForcedNullBackendReadsInvalidZero) {
  PerfCounterGroup group(/*disabled=*/true);
  EXPECT_FALSE(group.active());
  EXPECT_EQ(group.open_events(), 0);
  const PerfSample sample = group.Read();
  EXPECT_FALSE(sample.valid);
  EXPECT_EQ(sample.cycles, 0u);
  EXPECT_EQ(sample.instructions, 0u);
}

TEST(PerfCounterGroupTest, DefaultGroupMatchesSupportedProbe) {
  // Supported() and a real open must agree: if the probe says no hardware
  // events are available, the group has to be the null backend (and vice
  // versa a supported host yields an active group with valid samples).
  PerfCounterGroup group;
  EXPECT_EQ(group.active(), PerfCounterGroup::Supported());
  const PerfSample first = group.Read();
  EXPECT_EQ(first.valid, group.active());
  if (group.active()) {
    // Counters are monotone over work.
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 100000; ++i) sink = sink + i;
    const PerfSample second = group.Read();
    ASSERT_TRUE(second.valid);
    EXPECT_GE(second.cycles, first.cycles);
    EXPECT_GE(second.instructions, first.instructions);
    const PerfSample delta = second.DeltaSince(first);
    EXPECT_TRUE(delta.valid);
    EXPECT_GT(delta.instructions, 0u);
  }
}

TEST(PerfCounterGroupTest, SupportedIsStableAcrossCalls) {
  const bool first = PerfCounterGroup::Supported();
  EXPECT_EQ(first, PerfCounterGroup::Supported());
}

}  // namespace
}  // namespace aeetes
