// Positive control for the TSA negative-compilation harness: correct
// lock discipline must compile WARNING-FREE under
// -Wthread-safety -Werror=thread-safety. If this file fails, the harness
// toolchain is broken (and the bad_*.cc failures prove nothing).
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Set(int v) AEETES_EXCLUDES(mu_) {
    aeetes::MutexLock lock(mu_);
    value_ = v;
  }

  int Get() AEETES_EXCLUDES(mu_) {
    aeetes::MutexLock lock(mu_);
    return value_;
  }

  void SetLocked(int v) AEETES_REQUIRES(mu_) { value_ = v; }

  void WaitForNonZero() AEETES_EXCLUDES(mu_) {
    mu_.Lock();
    while (value_ == 0) cv_.Wait(mu_);
    mu_.Unlock();
  }

 private:
  aeetes::Mutex mu_;
  aeetes::CondVar cv_;
  int value_ AEETES_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  g.WaitForNonZero();
  return g.Get();
}
