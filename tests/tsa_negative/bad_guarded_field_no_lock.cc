// MUST FAIL to compile under -Werror=thread-safety: writes a
// GUARDED_BY(mu_) field without holding mu_. If this file ever compiles,
// the AEETES_GUARDED_BY annotation has silently become a no-op under the
// gate compiler and the whole TSA contract is void.
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Set(int v) { value_ = v; }  // no lock: must be rejected

 private:
  aeetes::Mutex mu_;
  int value_ AEETES_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  return 0;
}
