// MUST FAIL to compile under -Werror=thread-safety: releases a mutex the
// function never acquired (the double-unlock / unlock-on-wrong-branch
// shape that TSA exists to catch in WorkerLoop-style manual locking).
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

int main() {
  aeetes::Mutex mu;
  mu.Unlock();  // never locked: must be rejected
  return 0;
}
