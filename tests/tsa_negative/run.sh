#!/usr/bin/env bash
# Negative-compilation harness for the thread safety annotations
# (DESIGN.md §12). Proves the TSA gate has teeth in both directions:
#   ok_*.cc   must compile clean under -Werror=thread-safety
#   bad_*.cc  must FAIL to compile — each encodes one misuse
#             (guarded write without the lock, unlock-unheld,
#             REQUIRES violation, early-return lock leak)
# If a bad case starts compiling, an annotation went no-op (a silently
# weakened contract), which is exactly as bad as a new race.
#
# Requires clang++ (TSA is a clang analysis); callers gate on that —
# tools/check.sh skips the whole tsa step when clang is absent.
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/../.."

CXX="${CLANG_CXX:-clang++}"
FLAGS=(-std=c++20 -fsyntax-only -I. -Wthread-safety -Werror=thread-safety)

failed=0

for f in tests/tsa_negative/ok_*.cc; do
  if "$CXX" "${FLAGS[@]}" "$f" 2>/dev/null; then
    echo "PASS (compiles clean): $f"
  else
    echo "FAIL: positive control does not compile: $f"
    "$CXX" "${FLAGS[@]}" "$f" || true
    failed=1
  fi
done

for f in tests/tsa_negative/bad_*.cc; do
  if "$CXX" "${FLAGS[@]}" "$f" 2>/dev/null; then
    echo "FAIL: misuse compiled (annotation is a no-op): $f"
    failed=1
  else
    echo "PASS (correctly rejected): $f"
  fi
done

exit "$failed"
