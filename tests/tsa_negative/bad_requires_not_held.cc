// MUST FAIL to compile under -Werror=thread-safety: calls a
// REQUIRES(mu_) method without holding the lock (the RefillLocked /
// SetLocked calling convention).
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

class Guarded {
 public:
  void SetLocked(int v) AEETES_REQUIRES(mu_) { value_ = v; }

  void Set(int v) { SetLocked(v); }  // caller holds nothing: reject

 private:
  aeetes::Mutex mu_;
  int value_ AEETES_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  return 0;
}
