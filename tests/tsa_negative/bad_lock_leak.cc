// MUST FAIL to compile under -Werror=thread-safety: a function acquires a
// mutex on one path and returns without releasing it (the early-return
// leak that scoped MutexLock makes impossible and manual Lock/Unlock
// reintroduces).
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

int LeakOnEarlyReturn(aeetes::Mutex& mu, bool flag) {
  mu.Lock();
  if (flag) return 1;  // leaks mu: must be rejected
  mu.Unlock();
  return 0;
}

}  // namespace

int main() {
  aeetes::Mutex mu;
  return LeakOnEarlyReturn(mu, false);
}
