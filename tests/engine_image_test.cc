#include "src/core/engine_image.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "src/common/arena.h"
#include "src/common/checksum.h"
#include "src/common/hash.h"
#include "src/io/mapped_file.h"
#include "src/text/token_dictionary.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

TEST(Crc32cTest, KnownAnswer) {
  // The standard CRC-32C check value for the ASCII digits "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, ExtendComposesWithConcatenation) {
  const std::string a = "engine image ";
  const std::string b = "section payload bytes";
  const std::string ab = a + b;
  EXPECT_EQ(Crc32cExtend(Crc32c(a.data(), a.size()), b.data(), b.size()),
            Crc32c(ab.data(), ab.size()));
  // Single-byte-at-a-time extension must agree too.
  uint32_t crc = Crc32c(nullptr, 0);
  for (char c : ab) crc = Crc32cExtend(crc, &c, 1);
  EXPECT_EQ(crc, Crc32c(ab.data(), ab.size()));
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(257);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i * 7 + 1);
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t pos = 0; pos < data.size(); pos += 31) {
    data[pos] ^= 0x10;
    EXPECT_NE(Crc32c(data.data(), data.size()), clean) << "flip at " << pos;
    data[pos] ^= 0x10;
  }
}

TEST(HashBytesTest, StableAndDiscriminating) {
  const std::string s = "aeetes";
  EXPECT_EQ(HashBytes(s.data(), s.size()), HashBytes(s.data(), s.size()));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abd", 3));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abc", 2));
}

TEST(AlignedBufferTest, SixtyFourByteAligned) {
  for (size_t size : {size_t{1}, size_t{63}, size_t{64}, size_t{4097}}) {
    AlignedBuffer buf(size);
    ASSERT_NE(buf.data(), nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kImageAlignment, 0u)
        << "size=" << size;
    EXPECT_EQ(buf.size(), size);
  }
  AlignedBuffer empty;
  EXPECT_TRUE(empty.empty());
}

class ImageViewTest : public testing::Test {
 protected:
  /// A small two-section image: 5 u32s under id 7 and one Meta under
  /// img::kMeta.
  AlignedBuffer MakeImage() {
    ImageBuilder builder;
    builder.AddVector<uint32_t>(7, {10, 20, 30, 40, 50});
    img::Meta meta;
    meta.num_origins = 3;
    builder.AddPod(img::kMeta, meta);
    auto buf = builder.Finish();
    AEETES_CHECK(buf.ok());
    return std::move(*buf);
  }
};

TEST_F(ImageViewTest, RoundTrip) {
  const AlignedBuffer buf = MakeImage();
  auto view = ImageView::Parse(buf.bytes());
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->section_count(), 2u);
  EXPECT_TRUE(view->has(7));
  EXPECT_FALSE(view->has(8));

  auto arr = view->array<uint32_t>(7);
  ASSERT_TRUE(arr.ok());
  ASSERT_EQ(arr->size(), 5u);
  EXPECT_EQ((*arr)[0], 10u);
  EXPECT_EQ((*arr)[4], 50u);
  // Payloads start on the image alignment boundary.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arr->data()) % kImageAlignment, 0u);

  auto meta = view->pod<img::Meta>(img::kMeta);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_origins, 3u);
}

TEST_F(ImageViewTest, RejectsMissingSectionAndWrongElemSize) {
  const AlignedBuffer buf = MakeImage();
  auto view = ImageView::Parse(buf.bytes());
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->array<uint32_t>(9).ok());
  EXPECT_FALSE(view->array<uint64_t>(7).ok());  // elem_size mismatch
  EXPECT_FALSE(view->pod<uint32_t>(7).ok());    // five elements, not one
}

TEST_F(ImageViewTest, RejectsHostileHeaders) {
  const AlignedBuffer good = MakeImage();
  auto mutate = [&](size_t offset, uint8_t xor_mask) {
    std::vector<uint8_t> bytes(good.bytes().begin(), good.bytes().end());
    bytes[offset] ^= xor_mask;
    return bytes;
  };
  auto parse = [](const std::vector<uint8_t>& bytes) {
    return ImageView::Parse(Span<uint8_t>(bytes.data(), bytes.size()));
  };

  // Truncations: empty, sub-header, sub-table, one byte short.
  EXPECT_FALSE(ImageView::Parse(Span<uint8_t>()).ok());
  for (size_t keep : {size_t{1}, size_t{63}, size_t{80}, good.size() - 1}) {
    std::vector<uint8_t> bytes(good.bytes().begin(),
                               good.bytes().begin() + keep);
    EXPECT_FALSE(parse(bytes).ok()) << "kept " << keep;
  }

  EXPECT_FALSE(parse(mutate(0, 0xFF)).ok());   // magic
  EXPECT_FALSE(parse(mutate(4, 0xFF)).ok());   // version
  EXPECT_FALSE(parse(mutate(8, 0xFF)).ok());   // file_size
  EXPECT_FALSE(parse(mutate(16, 0xFF)).ok());  // endian mark
  EXPECT_FALSE(parse(mutate(20, 0xFF)).ok());  // section count
  EXPECT_FALSE(parse(mutate(32, 0xFF)).ok());  // table crc

  // A flip inside the section table breaks the table CRC.
  EXPECT_FALSE(parse(mutate(sizeof(ImageHeader) + 4, 0xFF)).ok());
  // A flip inside a payload breaks that section's CRC.
  EXPECT_FALSE(parse(mutate(good.size() - 60, 0x01)).ok());
}

TEST_F(ImageViewTest, RejectsDuplicateSectionIds) {
  ImageBuilder builder;
  builder.AddVector<uint32_t>(7, {1});
  builder.AddVector<uint32_t>(7, {2});
  EXPECT_FALSE(builder.Finish().ok());
}

TEST(MappedFileTest, RejectsMissingFileAndDirectory) {
  EXPECT_FALSE(MappedFile::Open("/definitely/not/a/file").ok());
  EXPECT_FALSE(
      MappedFile::Open(std::filesystem::temp_directory_path().string()).ok());
}

TEST(MappedFileTest, MapsBytesVerbatim) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("aeetes_map_" + std::to_string(::getpid()) + ".bin"))
          .string();
  const std::string payload = "mapped file payload";
  std::ofstream(path, std::ios::binary) << payload;
  {
    auto mapped = MappedFile::Open(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    ASSERT_EQ(mapped->bytes().size(), payload.size());
    EXPECT_EQ(std::memcmp(mapped->bytes().data(), payload.data(),
                          payload.size()),
              0);
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

/// The two-tier dictionary: base tier wired from an image, overflow tier
/// accepting new document tokens afterwards.
TEST(TokenDictionaryImageTest, BaseAndOverflowTiers) {
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId alpha = dict->GetOrAdd("alpha");
  const TokenId beta = dict->GetOrAdd("beta");
  ASSERT_TRUE(dict->AddFrequency(alpha, 3).ok());
  ASSERT_TRUE(dict->AddFrequency(beta, 1).ok());
  dict->Freeze();

  ImageBuilder builder;
  ASSERT_TRUE(dict->AppendSections(builder).ok());
  auto buf = builder.Finish();
  ASSERT_TRUE(buf.ok());
  auto view = ImageView::Parse(buf->bytes());
  ASSERT_TRUE(view.ok());
  auto wired = TokenDictionary::WireFromImage(*view);
  ASSERT_TRUE(wired.ok()) << wired.status();

  // Base tier: same ids, texts, frequencies; already frozen.
  EXPECT_TRUE((*wired)->frozen());
  EXPECT_EQ((*wired)->size(), 2u);
  EXPECT_EQ((*wired)->base_size(), 2u);
  EXPECT_EQ((*wired)->Lookup("alpha"), alpha);
  EXPECT_EQ((*wired)->Lookup("beta"), beta);
  EXPECT_EQ((*wired)->Text(alpha), "alpha");
  EXPECT_EQ((*wired)->frequency(alpha), 3u);
  EXPECT_EQ((*wired)->Rank(alpha), dict->Rank(alpha));
  EXPECT_FALSE((*wired)->Lookup("gamma").has_value());

  // Overflow tier: unseen tokens intern past the base with frequency 0.
  const TokenId gamma = (*wired)->GetOrAdd("gamma");
  EXPECT_EQ(gamma, 2u);
  EXPECT_EQ((*wired)->Text(gamma), "gamma");
  EXPECT_EQ((*wired)->frequency(gamma), 0u);
  EXPECT_EQ((*wired)->GetOrAdd("gamma"), gamma);
  EXPECT_EQ((*wired)->GetOrAdd("alpha"), alpha);  // base still resolves
  EXPECT_EQ((*wired)->size(), 3u);
}

TEST(TokenDictionaryImageTest, SurvivesManyTokens) {
  auto dict = std::make_unique<TokenDictionary>();
  constexpr size_t kN = 1000;
  for (size_t i = 0; i < kN; ++i) {
    const TokenId id = dict->GetOrAdd(testutil::NumberedName("tok", i));
    ASSERT_TRUE(dict->AddFrequency(id, i % 7 + 1).ok());
  }
  dict->Freeze();
  ImageBuilder builder;
  ASSERT_TRUE(dict->AppendSections(builder).ok());
  auto buf = builder.Finish();
  ASSERT_TRUE(buf.ok());
  auto view = ImageView::Parse(buf->bytes());
  ASSERT_TRUE(view.ok());
  auto wired = TokenDictionary::WireFromImage(*view);
  ASSERT_TRUE(wired.ok());
  for (size_t i = 0; i < kN; ++i) {
    const std::string name = testutil::NumberedName("tok", i);
    const auto id = (*wired)->Lookup(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_EQ((*wired)->Text(*id), name);
    EXPECT_EQ((*wired)->frequency(*id), i % 7 + 1);
  }
}

/// Heap-packed and file-mapped backings of the same image must wire to
/// behaviorally identical engines (the tentpole invariant).
TEST(EngineImageTest, HeapAndMmapBackingsAgree) {
  std::mt19937_64 rng(20260806);
  testutil::RandomWorld world = testutil::MakeRandomWorld(rng);
  auto parts = world.dd->ToParts();
  ASSERT_TRUE(parts.ok()) << parts.status();
  auto packed = EngineImage::Pack(std::move(*parts));
  ASSERT_TRUE(packed.ok()) << packed.status();
  EXPECT_FALSE((*packed)->stats().mmap_backed);

  // Write the arena verbatim and map it back.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("aeetes_image_" + std::to_string(::getpid()) + ".bin"))
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const Span<uint8_t> bytes = (*packed)->bytes();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  auto mapped = EngineImage::FromFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE((*mapped)->stats().mmap_backed);

  const DerivedDictionary& a = (*packed)->derived_dictionary();
  const DerivedDictionary& b = (*mapped)->derived_dictionary();
  ASSERT_EQ(a.num_origins(), b.num_origins());
  ASSERT_EQ(a.num_derived(), b.num_derived());
  for (DerivedId d = 0; d < a.num_derived(); ++d) {
    const DerivedView va = a.derived(d);
    const DerivedView vb = b.derived(d);
    EXPECT_EQ(va.origin, vb.origin);
    ASSERT_EQ(va.ordered_set.size(), vb.ordered_set.size());
    for (size_t i = 0; i < va.ordered_set.size(); ++i) {
      EXPECT_EQ(va.ordered_set[i], vb.ordered_set[i]);
    }
  }
  EXPECT_EQ((*packed)->index().MemoryBytes(), (*mapped)->index().MemoryBytes());

  std::error_code ec;
  std::filesystem::remove(path, ec);
}

/// FromBuffer must reject buffers that fail section validation even when
/// the checksums are recomputed to match (semantic, not just syntactic,
/// validation).
TEST(EngineImageTest, RejectsStructurallyInvalidImages) {
  // An image with only a meta section is syntactically fine but lacks
  // every component section.
  ImageBuilder builder;
  img::Meta meta;
  builder.AddPod(img::kMeta, meta);
  auto buf = builder.Finish();
  ASSERT_TRUE(buf.ok());
  auto image = EngineImage::FromBuffer(std::move(*buf));
  EXPECT_FALSE(image.ok());
}

}  // namespace
}  // namespace aeetes
