#include "src/join/asjs.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "src/synonym/applicability.h"
#include "src/synonym/conflict.h"
#include "src/text/token_set.h"

namespace aeetes {
namespace {

/// Builds "<prefix><i>" without std::string operator+ (works around a
/// spurious GCC 12 -Wrestrict warning at -O2).
std::string NumberedName(const char* prefix, size_t i) {
  std::string name(prefix);
  name += std::to_string(i);
  return name;
}

/// Brute-force JaccT: max Jaccard over derived cross product.
std::map<std::pair<uint32_t, uint32_t>, double> Oracle(
    const std::vector<TokenSeq>& left, const std::vector<TokenSeq>& right,
    const RuleSet& rules, const TokenDictionary& dict, double tau,
    const ExpanderOptions& exp_options) {
  auto expand = [&](const TokenSeq& s) {
    return ExpandEntity(
        s, SelectNonConflictGroups(FindApplicableRules(s, rules),
                                   exp_options.clique_mode),
        exp_options);
  };
  std::map<std::pair<uint32_t, uint32_t>, double> out;
  for (uint32_t i = 0; i < left.size(); ++i) {
    for (uint32_t j = 0; j < right.size(); ++j) {
      double best = 0.0;
      for (const DerivedForm& a : expand(left[i])) {
        for (const DerivedForm& b : expand(right[j])) {
          const TokenSeq sa = BuildOrderedSet(a.tokens, dict);
          const TokenSeq sb = BuildOrderedSet(b.tokens, dict);
          best = std::max(best, JaccardOnOrderedSets(sa, sb, dict));
        }
      }
      if (best >= tau - 1e-9) out[{i, j}] = best;
    }
  }
  return out;
}

TEST(AsjsTest, RejectsBadInputs) {
  RuleSet rules;
  EXPECT_FALSE(
      AsjsJoin::Build({}, {{1}}, rules, std::make_unique<TokenDictionary>())
          .ok());
  auto dict = std::make_unique<TokenDictionary>();
  dict->GetOrAdd("x");
  dict->Freeze();
  EXPECT_FALSE(AsjsJoin::Build({{0}}, {{0}}, rules, std::move(dict)).ok());
}

TEST(AsjsTest, RulesApplyOnBothSides) {
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId big = dict->GetOrAdd("big");
  const TokenId apple = dict->GetOrAdd("apple");
  const TokenId ny = dict->GetOrAdd("ny");
  const TokenId nyc = dict->GetOrAdd("nyc");
  RuleSet rules;
  ASSERT_TRUE(rules.Add({big, apple}, {ny}).ok());
  ASSERT_TRUE(rules.Add({nyc}, {ny}).ok());
  // "big apple" joins "nyc": both sides rewrite to "ny".
  auto join = AsjsJoin::Build({{big, apple}}, {{nyc}}, rules,
                              std::move(dict));
  ASSERT_TRUE(join.ok());
  const auto pairs = (*join)->Join(0.9);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].left, 0u);
  EXPECT_EQ(pairs[0].right, 0u);
  EXPECT_DOUBLE_EQ(pairs[0].score, 1.0);
}

TEST(AsjsTest, AsymmetricJaccArWouldMissTheBothSidesCase) {
  // Contrast with AEES semantics: if rules were applied on one side only,
  // "big apple" and "nyc" never meet (their derived sets only share "ny"
  // when BOTH rewrite). This is the semantic gap of Section 2.2.
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId big = dict->GetOrAdd("big");
  const TokenId apple = dict->GetOrAdd("apple");
  const TokenId ny = dict->GetOrAdd("ny");
  const TokenId nyc = dict->GetOrAdd("nyc");
  RuleSet rules;
  ASSERT_TRUE(rules.Add({big, apple}, {ny}).ok());
  ASSERT_TRUE(rules.Add({nyc}, {ny}).ok());
  // One-sided check: D("nyc") = {nyc, ny}; the raw string "big apple"
  // shares nothing with either.
  const TokenSeq raw = {big, apple};
  const auto groups =
      SelectNonConflictGroups(FindApplicableRules({nyc}, rules));
  double best = 0.0;
  for (const DerivedForm& d : ExpandEntity({nyc}, groups)) {
    TokenSeq sd = d.tokens;
    std::sort(sd.begin(), sd.end());
    TokenSeq sr = raw;
    std::sort(sr.begin(), sr.end());
    size_t overlap = 0;
    for (TokenId t : sd) {
      overlap += std::count(sr.begin(), sr.end(), t) > 0 ? 1 : 0;
    }
    best = std::max(best, SetSimilarity(Metric::kJaccard, overlap, sd.size(),
                                        sr.size()));
  }
  EXPECT_LT(best, 0.5);
}

TEST(AsjsPropertyTest, MatchesBruteForceOracle) {
  std::mt19937_64 rng(907);
  for (int iter = 0; iter < 25; ++iter) {
    auto dict = std::make_unique<TokenDictionary>();
    const size_t vocab = 18;
    std::vector<TokenId> ids;
    for (size_t i = 0; i < vocab; ++i) {
      ids.push_back(dict->GetOrAdd(NumberedName("j", i)));
    }
    auto rand_seq = [&](size_t max_len) {
      TokenSeq s;
      const size_t len = 1 + rng() % max_len;
      for (size_t i = 0; i < len; ++i) s.push_back(ids[rng() % vocab]);
      return s;
    };
    std::vector<TokenSeq> left, right;
    for (size_t i = 0; i < 6; ++i) left.push_back(rand_seq(4));
    for (size_t i = 0; i < 8; ++i) right.push_back(rand_seq(4));
    RuleSet rules;
    for (int i = 0; i < 5; ++i) {
      auto r = rules.Add(rand_seq(2), rand_seq(2));
      (void)r;
    }

    AsjsJoin::Options options;
    options.expander.max_derived = 16;

    // The oracle needs the frozen dictionary the join produces, so build
    // the join first, then recompute with a parallel dictionary: instead,
    // share by running the oracle on an identical dictionary state. We
    // rebuild a twin dictionary deterministically.
    auto twin = std::make_unique<TokenDictionary>();
    for (size_t i = 0; i < vocab; ++i) {
      twin->GetOrAdd(NumberedName("j", i));
    }

    auto join =
        AsjsJoin::Build(left, right, rules, std::move(dict), options);
    ASSERT_TRUE(join.ok());

    // Mirror the frequency counting the join performed.
    for (const auto* side : {&left, &right}) {
      for (const TokenSeq& s : *side) {
        const auto groups = SelectNonConflictGroups(
            FindApplicableRules(s, rules), options.expander.clique_mode);
        for (const DerivedForm& d :
             ExpandEntity(s, groups, options.expander)) {
          for (TokenId t : d.tokens) {
            ASSERT_TRUE(twin->AddFrequency(t).ok());
          }
        }
      }
    }
    twin->Freeze();

    for (double tau : {0.7, 0.9}) {
      const auto oracle =
          Oracle(left, right, rules, *twin, tau, options.expander);
      const auto got = (*join)->Join(tau);
      ASSERT_EQ(got.size(), oracle.size()) << "iter=" << iter
                                           << " tau=" << tau;
      for (const auto& p : got) {
        auto it = oracle.find({p.left, p.right});
        ASSERT_NE(it, oracle.end());
        EXPECT_NEAR(p.score, it->second, 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace aeetes
