#include "src/core/window.h"

#include <gtest/gtest.h>

#include <random>

#include "src/text/token_set.h"

namespace aeetes {
namespace {

/// Builds "<prefix><i>" without std::string operator+ (works around a
/// spurious GCC 12 -Wrestrict warning at -O2).
std::string NumberedName(const char* prefix, size_t i) {
  std::string name(prefix);
  name += std::to_string(i);
  return name;
}

class WindowTest : public testing::Test {
 protected:
  void SetUp() override {
    for (size_t i = 0; i < 10; ++i) {
      const TokenId id = dict_.GetOrAdd(NumberedName("w", i));
      ASSERT_TRUE(dict_.AddFrequency(id, i + 1).ok());  // rank = id order
    }
    dict_.Freeze();
  }

  Document Doc(const TokenSeq& tokens) { return Document::FromTokens(tokens); }

  TokenDictionary dict_;
};

TEST_F(WindowTest, ResetBuildsOrderedSet) {
  const Document doc = Doc({5, 2, 8, 2});
  SlidingWindow w(doc, dict_);
  w.Reset(0, 4);
  EXPECT_EQ(w.pos(), 0u);
  EXPECT_EQ(w.len(), 4u);
  EXPECT_EQ(w.set_size(), 3u);  // {2, 5, 8} with duplicate 2
  EXPECT_EQ(w.DistinctToken(0), 2u);
  EXPECT_EQ(w.DistinctToken(1), 5u);
  EXPECT_EQ(w.DistinctToken(2), 8u);
}

TEST_F(WindowTest, ExtendAddsTrailingToken) {
  const Document doc = Doc({5, 2, 8});
  SlidingWindow w(doc, dict_);
  w.Reset(0, 2);
  ASSERT_TRUE(w.Extend());
  EXPECT_EQ(w.len(), 3u);
  EXPECT_EQ(w.OrderedSet(), (TokenSeq{2, 5, 8}));
  EXPECT_FALSE(w.Extend());  // document end
}

TEST_F(WindowTest, MigrateShiftsWindow) {
  const Document doc = Doc({5, 2, 8, 1});
  SlidingWindow w(doc, dict_);
  w.Reset(0, 2);  // {2, 5}
  ASSERT_TRUE(w.Migrate());
  EXPECT_EQ(w.pos(), 1u);
  EXPECT_EQ(w.len(), 2u);
  EXPECT_EQ(w.OrderedSet(), (TokenSeq{2, 8}));
  ASSERT_TRUE(w.Migrate());
  EXPECT_EQ(w.OrderedSet(), (TokenSeq{1, 8}));
  EXPECT_FALSE(w.Migrate());
}

TEST_F(WindowTest, DuplicateCountsSurviveMigration) {
  const Document doc = Doc({3, 3, 3, 5});
  SlidingWindow w(doc, dict_);
  w.Reset(0, 2);  // {3 x2}
  EXPECT_EQ(w.set_size(), 1u);
  ASSERT_TRUE(w.Migrate());  // removes one 3, adds 3 -> still {3 x2}
  EXPECT_EQ(w.set_size(), 1u);
  ASSERT_TRUE(w.Migrate());  // {3, 5}
  EXPECT_EQ(w.set_size(), 2u);
}

TEST_F(WindowTest, InvalidTokensSortFirst) {
  // Token interned after freeze has frequency 0 -> lowest rank.
  const TokenId oov = dict_.GetOrAdd("oov");
  const Document doc = Doc({5, oov});
  SlidingWindow w(doc, dict_);
  w.Reset(0, 2);
  EXPECT_EQ(w.DistinctToken(0), oov);
}

TEST(WindowPropertyTest, IncrementalStateMatchesFromScratch) {
  std::mt19937_64 rng(31);
  for (int iter = 0; iter < 60; ++iter) {
    TokenDictionary dict;
    const size_t vocab = 12;
    for (size_t i = 0; i < vocab; ++i) {
      const TokenId id = dict.GetOrAdd(NumberedName("t", i));
      ASSERT_TRUE(dict.AddFrequency(id, rng() % 6).ok());
    }
    dict.Freeze();
    TokenSeq tokens;
    const size_t n = 10 + rng() % 40;
    for (size_t i = 0; i < n; ++i) {
      tokens.push_back(static_cast<TokenId>(rng() % vocab));
    }
    const Document doc = Document::FromTokens(tokens);

    // Random walk of Extend/Migrate, checking equality with a rebuilt
    // window at every step.
    SlidingWindow w(doc, dict);
    size_t pos = 0, len = 1 + rng() % 4;
    if (pos + len > n) len = n - pos;
    w.Reset(pos, len);
    for (int step = 0; step < 60; ++step) {
      const bool extend = (rng() % 2) == 0;
      if (extend) {
        if (!w.Extend()) continue;
        ++len;
      } else {
        if (!w.Migrate()) continue;
        ++pos;
      }
      SlidingWindow fresh(doc, dict);
      fresh.Reset(pos, len);
      ASSERT_EQ(w.pos(), pos);
      ASSERT_EQ(w.len(), len);
      ASSERT_EQ(w.OrderedSet(), fresh.OrderedSet())
          << "iter=" << iter << " step=" << step;
    }
  }
}

TEST(WindowPropertyTest, OrderedSetMatchesBuildOrderedSet) {
  std::mt19937_64 rng(77);
  TokenDictionary dict;
  for (size_t i = 0; i < 9; ++i) {
    const TokenId id = dict.GetOrAdd(NumberedName("t", i));
    ASSERT_TRUE(dict.AddFrequency(id, 1 + rng() % 4).ok());
  }
  dict.Freeze();
  TokenSeq tokens;
  for (size_t i = 0; i < 50; ++i) {
    tokens.push_back(static_cast<TokenId>(rng() % 9));
  }
  const Document doc = Document::FromTokens(tokens);
  SlidingWindow w(doc, dict);
  for (size_t p = 0; p + 5 <= doc.size(); p += 3) {
    w.Reset(p, 5);
    const TokenSeq expect = BuildOrderedSet(
        TokenSeq(tokens.begin() + p, tokens.begin() + p + 5), dict);
    EXPECT_EQ(w.OrderedSet(), expect);
  }
}

}  // namespace
}  // namespace aeetes
