#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "src/baseline/brute_force.h"
#include "src/sim/jaccar.h"
#include "src/text/token_set.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::MakeRandomWorld;

class FuzzyJaccArTest : public testing::Test {
 protected:
  void SetUp() override {
    auto dict = std::make_unique<TokenDictionary>();
    uq_ = dict->GetOrAdd("uq");
    au_ = dict->GetOrAdd("au");
    australia_ = dict->GetOrAdd("australia");
    austalia_ = dict->GetOrAdd("austalia");  // typo: dropped 'r'
    RuleSet rules;
    ASSERT_TRUE(rules.Add({au_}, {australia_}).ok());
    auto dd = DerivedDictionary::Build({{uq_, au_}}, rules, std::move(dict));
    ASSERT_TRUE(dd.ok());
    dd_ = std::move(*dd);
  }

  TokenSeq Set(const TokenSeq& seq) {
    return BuildOrderedSet(seq, dd_->token_dict());
  }

  TokenId uq_, au_, australia_, austalia_;
  std::unique_ptr<DerivedDictionary> dd_;
};

TEST_F(FuzzyJaccArTest, CleanTokensReduceToJaccAR) {
  FuzzyJaccArVerifier fuzzy(*dd_);
  JaccArVerifier plain(*dd_);
  for (const TokenSeq& s :
       {TokenSeq{uq_, au_}, TokenSeq{uq_, australia_}, TokenSeq{uq_}}) {
    EXPECT_DOUBLE_EQ(fuzzy.Score(0, Set(s)).score,
                     plain.Score(0, Set(s)).score);
  }
}

TEST_F(FuzzyJaccArTest, SurvivesSynonymPlusTypo) {
  // "uq austalia": needs the au -> australia rule AND typo tolerance.
  FuzzyJaccArVerifier fuzzy(*dd_, FuzzyJaccardOptions{0.8});
  JaccArVerifier plain(*dd_);
  const TokenSeq s = Set({uq_, austalia_});
  EXPECT_LE(plain.Score(0, s).score, 0.5);   // typo breaks plain JaccAR
  EXPECT_GT(fuzzy.Score(0, s).score, 0.85);  // 1 + (1 - 1/9) fuzzy match
}

TEST_F(FuzzyJaccArTest, WitnessPointsAtFuzzyBestDerived) {
  FuzzyJaccArVerifier fuzzy(*dd_, FuzzyJaccardOptions{0.8});
  const auto score = fuzzy.Score(0, Set({uq_, austalia_}));
  ASSERT_NE(score.best_derived, JaccArScore::kNoDerived);
  // The witness is the rule-rewritten variant containing "australia".
  const DerivedView witness = dd_->derived(score.best_derived);
  EXPECT_EQ(witness.applied_rules.size(), 1u);
}

TEST(FuzzyBruteForceTest, SupersetOfPlainBruteForce) {
  std::mt19937_64 rng(61);
  for (int iter = 0; iter < 10; ++iter) {
    auto world = MakeRandomWorld(rng, /*vocab=*/20, /*num_entities=*/8,
                                 /*num_rules=*/5, /*doc_len=*/40);
    const Document doc = Document::FromTokens(world.doc_tokens);
    const double tau = 0.8;
    const auto plain = BruteForceExtract(doc, *world.dd, tau);
    const auto fuzzy = BruteForceFuzzyExtract(doc, *world.dd, tau);
    // FJ >= Jaccard pointwise, so every plain match must reappear.
    for (const Match& m : plain) {
      bool found = false;
      for (const Match& f : fuzzy) {
        if (f == m) {
          found = true;
          EXPECT_GE(f.score + 1e-9, m.score);
          break;
        }
      }
      EXPECT_TRUE(found) << "plain match lost at pos=" << m.token_begin;
    }
  }
}

TEST(FuzzyBruteForceTest, WeightedScalesScores) {
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId a = dict->GetOrAdd("alpha");
  const TokenId b = dict->GetOrAdd("beta");
  RuleSet rules;
  ASSERT_TRUE(rules.Add({a}, {b}, 0.5).ok());
  auto dd = DerivedDictionary::Build({{a}}, rules, std::move(dict));
  ASSERT_TRUE(dd.ok());
  const Document doc = Document::FromTokens({b});
  const auto strict =
      BruteForceFuzzyExtract(doc, **dd, 0.6, {}, /*weighted=*/true);
  EXPECT_TRUE(strict.empty());  // 0.5 * 1.0 < 0.6
  const auto loose =
      BruteForceFuzzyExtract(doc, **dd, 0.4, {}, /*weighted=*/true);
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_DOUBLE_EQ(loose[0].score, 0.5);
}

}  // namespace
}  // namespace aeetes
