#include "src/core/aeetes.h"

#include <gtest/gtest.h>

#include <random>

#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::Sorted;

/// The Figure 1 scenario: institution names, common-sense synonym rules,
/// and a document where only one mention is an exact dictionary hit.
class Figure1Test : public testing::Test {
 protected:
  void SetUp() override {
    const std::vector<std::string> entities = {
        "massachusetts institute of technology",  // e0
        "purdue university usa",                  // e1
        "uq au",                                  // e2
    };
    const std::vector<std::string> rules = {
        "mit <=> massachusetts institute of technology",
        "uq <=> university of queensland",
        "au <=> australia",
    };
    auto built = Aeetes::BuildFromText(entities, rules);
    ASSERT_TRUE(built.ok()) << built.status();
    aeetes_ = std::move(*built);
    doc_ = aeetes_->EncodeDocument(
        "she studied at mit before joining purdue university usa and later "
        "the university of queensland australia");
  }

  std::unique_ptr<Aeetes> aeetes_;
  Document doc_;
};

TEST_F(Figure1Test, FindsExactSynonymAndMultiRuleMentions) {
  auto result = aeetes_->Extract(doc_, 0.9);
  ASSERT_TRUE(result.ok());
  const auto matches = Sorted(result->matches);
  ASSERT_EQ(matches.size(), 3u);

  // "mit" -> massachusetts institute of technology (reverse rule).
  EXPECT_EQ(matches[0].entity, 0u);
  EXPECT_EQ(matches[0].token_len, 1u);
  EXPECT_DOUBLE_EQ(matches[0].score, 1.0);
  EXPECT_EQ(doc_.SubstringText(matches[0].token_begin, matches[0].token_len),
            "mit");

  // "purdue university usa" exact.
  EXPECT_EQ(matches[1].entity, 1u);
  EXPECT_DOUBLE_EQ(matches[1].score, 1.0);

  // "university of queensland australia" via two rules on "uq au".
  EXPECT_EQ(matches[2].entity, 2u);
  EXPECT_EQ(matches[2].token_len, 4u);
  EXPECT_DOUBLE_EQ(matches[2].score, 1.0);
}

TEST_F(Figure1Test, StrategiesAgreeEndToEnd) {
  auto base = aeetes_->ExtractWithStrategy(doc_, 0.8, FilterStrategy::kSimple);
  ASSERT_TRUE(base.ok());
  for (FilterStrategy s : {FilterStrategy::kSkip, FilterStrategy::kDynamic,
                           FilterStrategy::kLazy}) {
    auto got = aeetes_->ExtractWithStrategy(doc_, 0.8, s);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Sorted(got->matches), Sorted(base->matches))
        << FilterStrategyName(s);
  }
}

TEST_F(Figure1Test, HigherThresholdsAreSubsets) {
  auto loose = aeetes_->Extract(doc_, 0.7);
  auto strict = aeetes_->Extract(doc_, 0.95);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_GE(loose->matches.size(), strict->matches.size());
  const auto loose_sorted = Sorted(loose->matches);
  for (const Match& m : strict->matches) {
    EXPECT_NE(std::find(loose_sorted.begin(), loose_sorted.end(), m),
              loose_sorted.end());
  }
}

TEST_F(Figure1Test, InvalidThresholdRejected) {
  EXPECT_FALSE(aeetes_->Extract(doc_, 0.0).ok());
  EXPECT_FALSE(aeetes_->Extract(doc_, 1.5).ok());
  EXPECT_FALSE(aeetes_->Extract(doc_, -0.1).ok());
}

TEST_F(Figure1Test, EntityTextRoundTrips) {
  EXPECT_EQ(aeetes_->EntityText(1), "purdue university usa");
}

TEST_F(Figure1Test, ExtractionStatsArePopulated) {
  auto result = aeetes_->Extract(doc_, 0.8);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->filter_stats.substrings, 0u);
  EXPECT_GT(result->filter_stats.entries_accessed, 0u);
  EXPECT_GE(result->verify_stats.verified, result->matches.size());
  EXPECT_EQ(result->verify_stats.matched, result->matches.size());
}

TEST(AeetesBuildTest, RejectsBadRuleLines) {
  EXPECT_FALSE(
      Aeetes::BuildFromText({"some entity"}, {"no separator"}).ok());
}

TEST(AeetesBuildTest, RejectsEmptyDictionary) {
  EXPECT_FALSE(Aeetes::BuildFromText({}, {}).ok());
}

TEST(AeetesBuildTest, WorksWithoutRules) {
  auto built = Aeetes::BuildFromText({"new york", "big apple"}, {});
  ASSERT_TRUE(built.ok());
  Document doc = (*built)->EncodeDocument("i love new york in the fall");
  auto result = (*built)->Extract(doc, 0.9);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  EXPECT_EQ(result->matches[0].entity, 0u);
}

TEST(AeetesBuildTest, WeightedOptionLowersRewrittenScores) {
  AeetesOptions options;
  options.weighted = true;
  // Manual build path so the rule carries a weight below 1.
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId big = dict->GetOrAdd("big");
  const TokenId apple = dict->GetOrAdd("apple");
  const TokenId new_ = dict->GetOrAdd("new");
  const TokenId york = dict->GetOrAdd("york");
  RuleSet rules;
  ASSERT_TRUE(rules.Add({big, apple}, {new_, york}, 0.6).ok());
  auto built = Aeetes::Build({{big, apple}}, rules, std::move(dict), options);
  ASSERT_TRUE(built.ok());
  Document doc = (*built)->EncodeDocument("go to new york now");
  auto strict = (*built)->Extract(doc, 0.7);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->matches.empty());  // 0.6 * 1.0 < 0.7
  auto loose = (*built)->Extract(doc, 0.55);
  ASSERT_TRUE(loose.ok());
  ASSERT_EQ(loose->matches.size(), 1u);
  EXPECT_DOUBLE_EQ(loose->matches[0].score, 0.6);
}

TEST(AeetesMetricTest, CosineAndDiceExtractToo) {
  for (Metric metric : {Metric::kCosine, Metric::kDice}) {
    AeetesOptions options;
    options.metric = metric;
    auto built = Aeetes::BuildFromText(
        {"new york city"}, {"big apple <=> new york"}, options);
    ASSERT_TRUE(built.ok());
    Document doc = (*built)->EncodeDocument("the big apple city lights");
    auto result = (*built)->Extract(doc, 0.8);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->matches.empty()) << MetricName(metric);
    double best = 0.0;
    for (const Match& m : result->matches) best = std::max(best, m.score);
    EXPECT_DOUBLE_EQ(best, 1.0) << MetricName(metric);
  }
}

TEST(LookupStringTest, RanksEntitiesByScore) {
  auto built = Aeetes::BuildFromText(
      {"new york city", "new york state", "york minster"},
      {"big apple <=> new york"});
  ASSERT_TRUE(built.ok());
  auto hits = (*built)->LookupString("big apple city", 0.5, 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ((*hits)[0].entity, 0u);  // "new york city" via the rule
  EXPECT_DOUBLE_EQ((*hits)[0].score, 1.0);
  for (size_t i = 1; i < hits->size(); ++i) {
    EXPECT_LE((*hits)[i].score, (*hits)[i - 1].score);
  }
}

TEST(LookupStringTest, RespectsKAndThreshold) {
  auto built = Aeetes::BuildFromText(
      {"alpha beta", "alpha gamma", "alpha delta"}, {});
  ASSERT_TRUE(built.ok());
  auto hits = (*built)->LookupString("alpha beta", 0.4, 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  auto none = (*built)->LookupString("unrelated words", 0.5);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_FALSE((*built)->LookupString("alpha", 0.0).ok());
}

TEST(LookupStringTest, EmptyMention) {
  auto built = Aeetes::BuildFromText({"alpha beta"}, {});
  ASSERT_TRUE(built.ok());
  auto hits = (*built)->LookupString("", 0.8);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(ExplainTest, ReportsWitnessAndRules) {
  auto built = Aeetes::BuildFromText({"new york city"},
                                     {"big apple <=> new york"});
  ASSERT_TRUE(built.ok());
  Document doc = (*built)->EncodeDocument("the big apple city");
  auto result = (*built)->Extract(doc, 0.9);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  const auto ex = (*built)->Explain(result->matches[0], doc);
  EXPECT_EQ(ex.substring_text, "big apple city");
  EXPECT_EQ(ex.entity_text, "new york city");
  EXPECT_EQ(ex.witness_text, "big apple city");
  EXPECT_EQ(ex.applied_rules.size(), 1u);
  EXPECT_DOUBLE_EQ(ex.score, 1.0);
}

}  // namespace
}  // namespace aeetes
