#include "src/synonym/rule.h"

#include <gtest/gtest.h>

namespace aeetes {
namespace {

TEST(RuleSetTest, AddStoresRule) {
  RuleSet rules;
  auto r = rules.Add({1, 2}, {3}, 0.9);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
  EXPECT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rule(0).lhs, (TokenSeq{1, 2}));
  EXPECT_EQ(rules.rule(0).rhs, (TokenSeq{3}));
  EXPECT_DOUBLE_EQ(rules.rule(0).weight, 0.9);
}

TEST(RuleSetTest, RejectsEmptySides) {
  RuleSet rules;
  EXPECT_EQ(rules.Add({}, {1}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(rules.Add({1}, {}).status().code(), StatusCode::kInvalidArgument);
}

TEST(RuleSetTest, RejectsIdenticalSides) {
  RuleSet rules;
  EXPECT_EQ(rules.Add({1, 2}, {1, 2}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RuleSetTest, RejectsBadWeights) {
  RuleSet rules;
  EXPECT_FALSE(rules.Add({1}, {2}, 0.0).ok());
  EXPECT_FALSE(rules.Add({1}, {2}, -0.5).ok());
  EXPECT_FALSE(rules.Add({1}, {2}, 1.5).ok());
  EXPECT_TRUE(rules.Add({1}, {2}, 1.0).ok());
}

TEST(RuleSetTest, AddFromTextParsesArrowSeparator) {
  RuleSet rules;
  Tokenizer tokenizer;
  TokenDictionary dict;
  auto r = rules.AddFromText("Big Apple <=> New York", tokenizer, dict);
  ASSERT_TRUE(r.ok());
  const SynonymRule& rule = rules.rule(*r);
  ASSERT_EQ(rule.lhs.size(), 2u);
  ASSERT_EQ(rule.rhs.size(), 2u);
  EXPECT_EQ(dict.Text(rule.lhs[0]), "big");
  EXPECT_EQ(dict.Text(rule.rhs[1]), "york");
}

TEST(RuleSetTest, AddFromTextParsesTabSeparator) {
  RuleSet rules;
  Tokenizer tokenizer;
  TokenDictionary dict;
  auto r = rules.AddFromText("uq\tuniversity of queensland", tokenizer, dict);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(rules.rule(*r).rhs.size(), 3u);
}

TEST(RuleSetTest, AddFromTextRejectsMissingSeparator) {
  RuleSet rules;
  Tokenizer tokenizer;
  TokenDictionary dict;
  EXPECT_EQ(rules.AddFromText("no separator here", tokenizer, dict)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RuleSetTest, AddFromTextRejectsEmptySide) {
  RuleSet rules;
  Tokenizer tokenizer;
  TokenDictionary dict;
  EXPECT_FALSE(rules.AddFromText(" <=> new york", tokenizer, dict).ok());
}

}  // namespace
}  // namespace aeetes
