#include "src/text/tokenizer.h"

#include <gtest/gtest.h>

namespace aeetes {
namespace {

TEST(TokenizerTest, SplitsOnWhitespaceAndPunctuation) {
  Tokenizer t;
  const auto toks = t.TokenizeToStrings("Hello, world! foo-bar");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
  EXPECT_EQ(toks[2], "foo");
  EXPECT_EQ(toks[3], "bar");
}

TEST(TokenizerTest, LowercaseCanBeDisabled) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Tokenizer t(opts);
  const auto toks = t.TokenizeToStrings("MIT Rocks");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "MIT");
  EXPECT_EQ(toks[1], "Rocks");
}

TEST(TokenizerTest, DigitsKeptByDefault) {
  Tokenizer t;
  const auto toks = t.TokenizeToStrings("vldb2018 pc");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "vldb2018");
}

TEST(TokenizerTest, DigitsCanBeSeparators) {
  TokenizerOptions opts;
  opts.keep_digits = false;
  Tokenizer t(opts);
  const auto toks = t.TokenizeToStrings("vldb2018");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0], "vldb");
}

TEST(TokenizerTest, ExtraTokenCharsJoinTokens) {
  TokenizerOptions opts;
  opts.extra_token_chars = "-";
  Tokenizer t(opts);
  const auto toks = t.TokenizeToStrings("foo-bar baz");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "foo-bar");
}

TEST(TokenizerTest, SpansPointIntoOriginalText) {
  Tokenizer t;
  const std::string text = "  New York,  USA";
  const auto toks = t.Tokenize(text);
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(text.substr(toks[0].begin, toks[0].end - toks[0].begin), "New");
  EXPECT_EQ(text.substr(toks[1].begin, toks[1].end - toks[1].begin), "York");
  EXPECT_EQ(text.substr(toks[2].begin, toks[2].end - toks[2].begin), "USA");
}

TEST(TokenizerTest, EmptyAndSeparatorOnlyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.TokenizeToStrings("").empty());
  EXPECT_TRUE(t.TokenizeToStrings("  ,;!  ").empty());
}

TEST(TokenizerTest, TokenAtEndOfInput) {
  Tokenizer t;
  const auto toks = t.Tokenize("abc");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].begin, 0u);
  EXPECT_EQ(toks[0].end, 3u);
}

TEST(TokenizerTest, NonAsciiBytesActAsSeparators) {
  Tokenizer t;
  const auto toks = t.TokenizeToStrings("caf\xc3\xa9 bar");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "caf");
  EXPECT_EQ(toks[1], "bar");
}

TEST(TokenizerTest, Utf8ModeKeepsMultiByteWords) {
  TokenizerOptions opts;
  opts.utf8_token_bytes = true;
  Tokenizer t(opts);
  const auto toks = t.TokenizeToStrings("caf\xc3\xa9 M\xc3\xbcnchen bar");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "caf\xc3\xa9");
  EXPECT_EQ(toks[1], "m\xc3\xbcnchen");  // ASCII letters folded, bytes kept
  EXPECT_EQ(toks[2], "bar");
}

}  // namespace
}  // namespace aeetes
