#include "src/core/scratch.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/core/aeetes.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::MakeRandomWorld;
using testutil::Sorted;

// Regression: the tracker used to start at epoch 0 with a zero-initialized
// last_seen_ array, so every origin read as a candidate of the implicit
// pre-first-NextSubstring "substring" before anything was ever marked.
TEST(OriginTrackerTest, NothingIsCandidateBeforeFirstMark) {
  OriginTracker t(8);
  for (EntityId e = 0; e < 8; ++e) {
    EXPECT_FALSE(t.IsCandidate(e)) << "origin " << e
                                   << " spuriously marked at construction";
  }
  t.NextSubstring();
  for (EntityId e = 0; e < 8; ++e) EXPECT_FALSE(t.IsCandidate(e));
}

TEST(OriginTrackerTest, MarkAndAdvance) {
  OriginTracker t(4);
  EXPECT_TRUE(t.Mark(2));
  EXPECT_TRUE(t.IsCandidate(2));
  EXPECT_FALSE(t.Mark(2)) << "second Mark of the same origin must dedupe";
  EXPECT_FALSE(t.IsCandidate(1));

  t.NextSubstring();
  EXPECT_FALSE(t.IsCandidate(2)) << "mark leaked across substrings";
  EXPECT_TRUE(t.Mark(2));
}

TEST(OriginTrackerTest, GrowingReserveDoesNotMark) {
  OriginTracker t(2);
  t.Mark(0);
  t.Mark(1);
  t.Reserve(6);  // new slots stamp 0, never a live epoch
  for (EntityId e = 2; e < 6; ++e) EXPECT_FALSE(t.IsCandidate(e));
  EXPECT_TRUE(t.IsCandidate(0));
  EXPECT_TRUE(t.IsCandidate(1));
}

constexpr FilterStrategy kAllStrategies[] = {
    FilterStrategy::kSimple, FilterStrategy::kSkip, FilterStrategy::kDynamic,
    FilterStrategy::kLazy};

// One warm scratch reused across documents, strategies, and thresholds
// must return exactly what a fresh Extract call returns: stale buffer
// contents (candidate arenas, memo tables, window states bound to a dead
// document) must never leak into the next call's results.
TEST(ExtractScratchTest, WarmReuseMatchesFreshExtract) {
  std::mt19937_64 rng(2024);
  ExtractScratch scratch;  // deliberately shared across everything below
  for (int iter = 0; iter < 8; ++iter) {
    auto world = MakeRandomWorld(rng, /*vocab=*/25, /*num_entities=*/10,
                                 /*num_rules=*/6, /*doc_len=*/120);
    auto built = Aeetes::FromDerivedDictionary(std::move(world.dd));
    ASSERT_TRUE(built.ok());
    const Document doc = Document::FromTokens(world.doc_tokens);
    for (double tau : {0.7, 0.85}) {
      for (FilterStrategy s : kAllStrategies) {
        auto fresh = (*built)->ExtractWithStrategy(doc, tau, s);
        ASSERT_TRUE(fresh.ok());
        auto warm = (*built)->ExtractIntoWithStrategy(scratch, doc, tau, s);
        ASSERT_TRUE(warm.ok());
        const auto expect = Sorted(fresh->matches);
        const auto got = Sorted(scratch.matches);
        ASSERT_EQ(got.size(), expect.size())
            << "iter=" << iter << " tau=" << tau
            << " strategy=" << FilterStrategyName(s);
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].token_begin, expect[i].token_begin);
          EXPECT_EQ(got[i].token_len, expect[i].token_len);
          EXPECT_EQ(got[i].entity, expect[i].entity);
          EXPECT_DOUBLE_EQ(got[i].score, expect[i].score);
          EXPECT_EQ(got[i].best_derived, expect[i].best_derived);
        }
      }
    }
  }
}

// Back-to-back identical calls on one scratch must be idempotent — the
// second (fully warm, allocation-free) call sees every buffer in its
// post-use state rather than fresh, which is exactly the state the §10
// reset contract has to handle.
TEST(ExtractScratchTest, RepeatedCallsAreIdempotent) {
  std::mt19937_64 rng(7);
  auto world = MakeRandomWorld(rng, 30, 12, 8, 200);
  auto built = Aeetes::FromDerivedDictionary(std::move(world.dd));
  ASSERT_TRUE(built.ok());
  const Document doc = Document::FromTokens(world.doc_tokens);
  for (FilterStrategy s : kAllStrategies) {
    ExtractScratch scratch;
    ASSERT_TRUE((*built)->ExtractIntoWithStrategy(scratch, doc, 0.75, s).ok());
    const auto first = Sorted(scratch.matches);
    ASSERT_TRUE((*built)->ExtractIntoWithStrategy(scratch, doc, 0.75, s).ok());
    const auto second = Sorted(scratch.matches);
    ASSERT_EQ(first.size(), second.size())
        << "strategy=" << FilterStrategyName(s);
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].token_begin, second[i].token_begin);
      EXPECT_EQ(first[i].token_len, second[i].token_len);
      EXPECT_EQ(first[i].entity, second[i].entity);
      EXPECT_DOUBLE_EQ(first[i].score, second[i].score);
    }
  }
}

}  // namespace
}  // namespace aeetes
