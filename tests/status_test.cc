#include "src/common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aeetes {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("missing entity");
  EXPECT_EQ(s.ToString(), "NotFound: missing entity");
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::IOError("disk");
  EXPECT_EQ(os.str(), "IOError: disk");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("no"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(3), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

// Misuse paths abort via AEETES_CHECK in every build type: the library
// never throws, so these are the only guard between a forgotten ok()
// check and dereferencing an empty optional.
TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::NotFound("no such entity"));
  EXPECT_DEATH(r.value(), "Result::value\\(\\) called on error.*NotFound");
}

TEST(ResultDeathTest, DereferenceOnErrorAborts) {
  Result<std::string> r(Status::Internal("boom"));
  EXPECT_DEATH(*r, "Result::value\\(\\) called on error.*Internal: boom");
  EXPECT_DEATH(r->size(), "Result::value\\(\\) called on error");
}

TEST(ResultDeathTest, MoveValueOnErrorAborts) {
  EXPECT_DEATH(
      {
        Result<std::string> r(Status::IOError("disk gone"));
        std::string v = std::move(r).value();
      },
      "Result::value\\(\\) called on error.*IOError");
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH(Result<int>(Status::OK()),
               "Result\\(Status\\) requires a non-OK status");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  AEETES_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AEETES_ASSIGN_OR_RETURN(int h, Half(x));
  AEETES_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

}  // namespace
}  // namespace aeetes
