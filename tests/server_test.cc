// In-process end-to-end tests for the serving daemon: a real Server on an
// ephemeral port, real Client connections over loopback, the full framed-
// JSON protocol in between. Covers the collection lifecycle, batched
// extraction, response pipelining order, per-tenant rate limiting,
// hostile frames, and graceful drain.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/io/snapshot.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace aeetes {
namespace server {
namespace {

constexpr char kCreateInst[] =
    R"({"verb":"create","collection":"inst","entities":[)"
    R"("university of california berkeley",)"
    R"("massachusetts institute of technology"],)"
    R"("rules":["uc <=> university of california",)"
    R"("mit <=> massachusetts institute of technology"]})";

class ServerTest : public testing::Test {
 protected:
  void StartServer(Server::Options options = {}) {
    auto server = Server::Start(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
  }

  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(*client) : nullptr;
  }

  /// One round trip that must produce a parseable response object.
  JsonValue Call(Client& client, std::string_view request) {
    auto response = client.Call(request);
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? std::move(*response) : JsonValue();
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, CollectionLifecycleOverTheWire) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  JsonValue health = Call(*client, R"({"verb":"healthz"})");
  EXPECT_TRUE(health.Find("ok")->AsBool());
  EXPECT_EQ(health.Find("status")->AsString(), "serving");
  EXPECT_DOUBLE_EQ(health.Find("collections")->AsDouble(), 0);

  EXPECT_TRUE(Call(*client, kCreateInst).Find("ok")->AsBool());

  // Creating the same name again is a 409-style conflict.
  JsonValue conflict = Call(*client, kCreateInst);
  EXPECT_FALSE(conflict.Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(conflict.Find("code")->AsDouble(), kConflict);

  JsonValue list = Call(*client, R"({"verb":"list"})");
  ASSERT_EQ(list.Find("collections")->size(), 1u);
  EXPECT_EQ(list.Find("collections")->at(0).Find("name")->AsString(), "inst");
  EXPECT_DOUBLE_EQ(
      list.Find("collections")->at(0).Find("version")->AsDouble(), 1);

  JsonValue extraction = Call(
      *client,
      R"({"verb":"extract","collection":"inst",)"
      R"("docs":["she studied at uc berkeley and later mit"]})");
  ASSERT_TRUE(extraction.Find("ok")->AsBool());
  ASSERT_EQ(extraction.Find("results")->size(), 1u);
  const JsonValue& doc = extraction.Find("results")->at(0);
  ASSERT_GE(doc.Find("matches")->size(), 2u);
  bool saw_berkeley = false;
  bool saw_mit = false;
  for (size_t m = 0; m < doc.Find("matches")->size(); ++m) {
    const std::string entity =
        doc.Find("matches")->at(m).Find("entity_text")->AsString();
    saw_berkeley |= entity == "university of california berkeley";
    saw_mit |= entity == "massachusetts institute of technology";
  }
  EXPECT_TRUE(saw_berkeley);
  EXPECT_TRUE(saw_mit);

  EXPECT_TRUE(
      Call(*client, R"({"verb":"delete","collection":"inst"})")
          .Find("ok")
          ->AsBool());
  JsonValue gone = Call(
      *client, R"({"verb":"extract","collection":"inst","docs":["x"]})");
  EXPECT_FALSE(gone.Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(gone.Find("code")->AsDouble(), kNotFound);
}

TEST_F(ServerTest, LoadAndSwapFromSnapshot) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(Call(*client, kCreateInst).Find("ok")->AsBool());

  const std::string snap =
      (std::filesystem::temp_directory_path() /
       ("aeetes_server_test_" + std::to_string(::getpid()) + ".snap"))
          .string();
  auto engine = server_->collections().Acquire("inst");
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(SaveSnapshot(*(*engine)->aeetes, snap).ok());

  JsonValue loaded = Call(*client, R"({"verb":"load","collection":"mapped",)"
                                   R"("path":")" + snap + "\"}");
  EXPECT_TRUE(loaded.Find("ok")->AsBool());
  JsonValue swapped = Call(*client, R"({"verb":"swap","collection":"inst",)"
                                    R"("path":")" + snap + "\"}");
  EXPECT_TRUE(swapped.Find("ok")->AsBool());

  JsonValue list = Call(*client, R"({"verb":"list"})");
  ASSERT_EQ(list.Find("collections")->size(), 2u);
  // Sorted by name: inst (swapped to v2), mapped (v1).
  EXPECT_DOUBLE_EQ(
      list.Find("collections")->at(0).Find("version")->AsDouble(), 2);
  EXPECT_EQ(list.Find("collections")->at(1).Find("name")->AsString(),
            "mapped");

  // The mmap-loaded collection serves extractions.
  JsonValue extraction = Call(
      *client, R"({"verb":"extract","collection":"mapped",)"
               R"("docs":["visiting uc berkeley"],"tau":0.8})");
  ASSERT_TRUE(extraction.Find("ok")->AsBool());
  EXPECT_GE(extraction.Find("results")->at(0).Find("matches")->size(), 1u);

  std::error_code ec;
  std::filesystem::remove(snap, ec);
}

TEST_F(ServerTest, PipelinedResponsesComeBackInRequestOrder) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(Call(*client, kCreateInst).Find("ok")->AsBool());

  // Three pipelined requests: extract (async via batcher), healthz
  // (answered inline on the loop thread), extract. The inline response
  // must still come back second.
  ASSERT_TRUE(client
                  ->Send(R"({"verb":"extract","collection":"inst",)"
                         R"("docs":["first doc about uc berkeley"]})")
                  .ok());
  ASSERT_TRUE(client->Send(R"({"verb":"healthz"})").ok());
  ASSERT_TRUE(client
                  ->Send(R"({"verb":"extract","collection":"inst",)"
                         R"("docs":["second doc about mit"]})")
                  .ok());

  auto first = client->Receive();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_NE(first->find("\"results\""), std::string::npos);
  EXPECT_NE(first->find("university of california berkeley"),
            std::string::npos);

  auto second = client->Receive();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_NE(second->find("\"status\""), std::string::npos);

  auto third = client->Receive();
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_NE(third->find("massachusetts institute of technology"),
            std::string::npos);
}

TEST_F(ServerTest, PerTenantRateLimitIsolatesTenants) {
  Server::Options options;
  // Two-token burst, effectively no refill within the test's runtime.
  options.rate_limit.tokens_per_second = 0.001;
  options.rate_limit.burst = 2.0;
  StartServer(std::move(options));
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(Call(*client, kCreateInst).Find("ok")->AsBool());

  const std::string noisy =
      R"({"verb":"extract","collection":"inst","tenant":"noisy",)"
      R"("docs":["uc berkeley"]})";
  EXPECT_TRUE(Call(*client, noisy).Find("ok")->AsBool());
  EXPECT_TRUE(Call(*client, noisy).Find("ok")->AsBool());
  JsonValue limited = Call(*client, noisy);
  EXPECT_FALSE(limited.Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(limited.Find("code")->AsDouble(), kRateLimited);

  // A different tenant on the same connection is unaffected.
  EXPECT_TRUE(Call(*client,
                   R"({"verb":"extract","collection":"inst",)"
                   R"("tenant":"quiet","docs":["mit"]})")
                  .Find("ok")
                  ->AsBool());

  // Admin verbs are not rate limited.
  EXPECT_TRUE(Call(*client, R"({"verb":"healthz"})").Find("ok")->AsBool());

  const Counter* rejected =
      server_->metrics().FindCounter("server.rate_limited");
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->value(), 1u);
}

TEST_F(ServerTest, MalformedRequestsGetTypedErrors) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  JsonValue bad_json = Call(*client, "this is not json");
  EXPECT_FALSE(bad_json.Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(bad_json.Find("code")->AsDouble(), kBadRequest);

  JsonValue bad_verb = Call(*client, R"({"verb":"frobnicate"})");
  EXPECT_DOUBLE_EQ(bad_verb.Find("code")->AsDouble(), kBadRequest);

  JsonValue bad_tau = Call(
      *client,
      R"({"verb":"extract","collection":"c","tau":7,"docs":["x"]})");
  EXPECT_DOUBLE_EQ(bad_tau.Find("code")->AsDouble(), kBadRequest);

  // The connection survives malformed payloads (only framing kills it).
  EXPECT_TRUE(Call(*client, R"({"verb":"healthz"})").Find("ok")->AsBool());
}

TEST_F(ServerTest, OversizedFrameClosesTheConnection) {
  Server::Options options;
  options.max_frame_bytes = 1024;
  StartServer(std::move(options));
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  // A frame header promising 2 MiB poisons the stream; the server must
  // drop the connection rather than try to resync.
  const std::string huge(2u << 20, 'x');
  EXPECT_TRUE(client->Send(huge).ok());
  auto response = client->Receive();
  EXPECT_FALSE(response.ok());

  // The server itself is unharmed: new connections work.
  auto fresh = Connect();
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(Call(*fresh, R"({"verb":"healthz"})").Find("ok")->AsBool());
  const Counter* bad = server_->metrics().FindCounter("server.bad_frames");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->value(), 1u);
}

TEST_F(ServerTest, MetricsVerbExposesServerFamilies) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(Call(*client, kCreateInst).Find("ok")->AsBool());
  ASSERT_TRUE(
      Call(*client, R"({"verb":"extract","collection":"inst",)"
                    R"("docs":["uc berkeley"]})")
          .Find("ok")
          ->AsBool());

  JsonValue metrics = Call(*client, R"({"verb":"metrics"})");
  ASSERT_TRUE(metrics.Find("ok")->AsBool());
  const std::string text = metrics.Find("text")->AsString();
  EXPECT_NE(text.find("aeetes_server_requests_total"), std::string::npos);
  EXPECT_NE(text.find("aeetes_server_batch_size"), std::string::npos);
  EXPECT_NE(text.find("aeetes_server_rate_limited_total"), std::string::npos);
  EXPECT_NE(text.find("aeetes_server_active_collections 1"),
            std::string::npos);

  JsonValue stats = Call(*client, R"({"verb":"stats"})");
  ASSERT_TRUE(stats.Find("ok")->AsBool());
  EXPECT_NE(stats.Find("stats"), nullptr);
}

TEST_F(ServerTest, LiveUpdateVerbsOverTheWire) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(Call(*client, kCreateInst).Find("ok")->AsBool());

  // Upserting into a missing collection is a 404.
  JsonValue missing = Call(
      *client,
      R"({"verb":"upsert_entities","collection":"ghost","entities":["x"]})");
  EXPECT_FALSE(missing.Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(missing.Find("code")->AsDouble(), kNotFound);

  JsonValue upserted = Call(
      *client, R"({"verb":"upsert_entities","collection":"inst",)"
               R"("entities":["stanford university"]})");
  ASSERT_TRUE(upserted.Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(upserted.Find("upserted")->AsDouble(), 1);

  JsonValue removed = Call(
      *client, R"({"verb":"remove_entities","collection":"inst",)"
               R"("entities":["massachusetts institute of technology"]})");
  ASSERT_TRUE(removed.Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(removed.Find("removed")->AsDouble(), 1);

  // The overlay is live immediately: the upsert matches, the tombstoned
  // frozen entity does not.
  const std::string extract =
      R"({"verb":"extract","collection":"inst",)"
      R"("docs":["stanford university beats mit"],"tau":0.9})";
  auto texts_of = [](const JsonValue& extraction) {
    std::vector<std::string> texts;
    const JsonValue* matches =
        extraction.Find("results")->at(0).Find("matches");
    for (size_t m = 0; m < matches->size(); ++m) {
      texts.push_back(matches->at(m).Find("entity_text")->AsString());
    }
    return texts;
  };
  JsonValue before = Call(*client, extract);
  ASSERT_TRUE(before.Find("ok")->AsBool());
  std::vector<std::string> before_texts = texts_of(before);
  EXPECT_NE(std::find(before_texts.begin(), before_texts.end(),
                      "stanford university"),
            before_texts.end());
  EXPECT_EQ(std::find(before_texts.begin(), before_texts.end(),
                      "massachusetts institute of technology"),
            before_texts.end());

  JsonValue list = Call(*client, R"({"verb":"list"})");
  EXPECT_DOUBLE_EQ(
      list.Find("collections")->at(0).Find("delta_entities")->AsDouble(), 1);
  EXPECT_DOUBLE_EQ(
      list.Find("collections")->at(0).Find("tombstones")->AsDouble(), 1);

  JsonValue compact =
      Call(*client, R"({"verb":"compact","collection":"inst"})");
  ASSERT_TRUE(compact.Find("ok")->AsBool());
  EXPECT_TRUE(compact.Find("scheduled")->AsBool());
  EXPECT_DOUBLE_EQ(compact.Find("target_version")->AsDouble(), 2);

  // Compaction is async: poll list until the new image is published.
  bool compacted = false;
  for (int i = 0; i < 500 && !compacted; ++i) {
    JsonValue poll = Call(*client, R"({"verb":"list"})");
    compacted =
        poll.Find("collections")->at(0).Find("version")->AsDouble() >= 2;
    if (!compacted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(compacted) << "compaction never published version 2";

  // Identical results from the compacted image, empty successor overlay.
  JsonValue after = Call(*client, extract);
  ASSERT_TRUE(after.Find("ok")->AsBool());
  EXPECT_EQ(texts_of(after), before_texts);
  JsonValue final_list = Call(*client, R"({"verb":"list"})");
  EXPECT_DOUBLE_EQ(
      final_list.Find("collections")->at(0).Find("delta_entities")
          ->AsDouble(),
      0);
  EXPECT_DOUBLE_EQ(
      final_list.Find("collections")->at(0).Find("tombstones")->AsDouble(),
      0);

  JsonValue metrics = Call(*client, R"({"verb":"metrics"})");
  const std::string text = metrics.Find("text")->AsString();
  EXPECT_NE(text.find("aeetes_collection_compactions_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("aeetes_collection_delta_entities 0"),
            std::string::npos);
}

// Regression: a slow client used to make WriteReady spin the poll loop
// (EAGAIN retried in a tight loop) and let the outbox grow without bound
// while POLLIN kept accepting more work. Now the backlog gates POLLIN and
// the responses flush incrementally on POLLOUT, in request order, while
// other connections stay live.
TEST_F(ServerTest, SlowClientBackpressureKeepsOrderAndServerLiveness) {
  Server::Options options;
  options.outbox_high_watermark = 16u << 10;  // back up after ~16 KiB
  StartServer(std::move(options));
  auto admin = Connect();
  ASSERT_NE(admin, nullptr);
  ASSERT_TRUE(Call(*admin, kCreateInst).Find("ok")->AsBool());

  // A raw socket whose receive buffer is as small as the kernel allows:
  // the server's writes hit EAGAIN almost immediately.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 2048;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny)), 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Pipeline many extracts without reading a byte. Request i carries
  // (i % 7) + 1 docs, so the response ordering is observable from the
  // results array size alone. Every doc yields several matches, so the
  // response bytes dwarf the watermark plus both socket buffers.
  constexpr size_t kRequests = 120;
  std::string wire;
  for (size_t i = 0; i < kRequests; ++i) {
    std::string request =
        R"({"verb":"extract","collection":"inst","docs":[)";
    const size_t docs = i % 7 + 1;
    for (size_t d = 0; d < docs; ++d) {
      if (d > 0) request += ',';
      request +=
          R"("uc berkeley and mit and uc berkeley and mit and uc berkeley")";
    }
    request += "]}";
    EncodeFrame(request, &wire);
  }
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + sent, wire.size() - sent);
    ASSERT_GT(n, 0) << "short request write: " << std::strerror(errno);
    sent += static_cast<size_t>(n);
  }

  // While the slow connection's outbox is clogged, the loop must keep
  // serving everyone else.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(Call(*admin, R"({"verb":"healthz"})").Find("ok")->AsBool());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Now drain: every response arrives intact and in request order.
  FrameReader reader;
  std::string payload;
  size_t received = 0;
  char buffer[4096];
  while (received < kRequests) {
    FrameReader::Next next = reader.Poll(&payload);
    if (next == FrameReader::Next::kNeedMore) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      ASSERT_GT(n, 0) << "connection died after " << received
                      << " responses";
      reader.Feed(buffer, static_cast<size_t>(n));
      continue;
    }
    ASSERT_EQ(next, FrameReader::Next::kFrame);
    auto response = ParseJson(payload);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->Find("ok")->AsBool()) << payload;
    EXPECT_EQ(response->Find("results")->size(), received % 7 + 1)
        << "response " << received << " out of order";
    ++received;
  }
  ::close(fd);
}

TEST_F(ServerTest, GracefulDrainFinishesInFlightWork) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(Call(*client, kCreateInst).Find("ok")->AsBool());
  ASSERT_TRUE(
      Call(*client, R"({"verb":"extract","collection":"inst",)"
                    R"("docs":["uc berkeley"]})")
          .Find("ok")
          ->AsBool());

  // Drain with a live, idle connection: the loop must close it, drain the
  // batcher, and exit — Wait() returning IS the assertion (a hang here
  // fails via the test timeout).
  server_->RequestDrain();
  server_->Wait();

  // The drained server refuses nothing — it is simply gone.
  auto late = Client::Connect("127.0.0.1", server_->port());
  EXPECT_FALSE(late.ok());
}

}  // namespace
}  // namespace server
}  // namespace aeetes
