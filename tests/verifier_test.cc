#include "src/core/verifier.h"

#include <gtest/gtest.h>

#include <random>

#include "src/baseline/brute_force.h"
#include "src/core/candidate_generator.h"
#include "src/index/clustered_index.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::MakeRandomWorld;
using testutil::Sorted;

TEST(ScorePassesTest, EpsilonGuard) {
  EXPECT_TRUE(ScorePasses(0.8, 0.8));
  EXPECT_TRUE(ScorePasses(4.0 / 5.0, 0.8));
  EXPECT_TRUE(ScorePasses(0.8 - 1e-12, 0.8));
  EXPECT_FALSE(ScorePasses(0.79, 0.8));
}

TEST(VerifierTest, FilterPlusVerifyEqualsBruteForce) {
  std::mt19937_64 rng(41);
  for (int iter = 0; iter < 25; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    for (double tau : {0.7, 0.8, 0.9}) {
      const auto oracle = Sorted(BruteForceExtract(doc, *world.dd, tau));
      auto gen = GenerateCandidates(FilterStrategy::kLazy, doc, *world.dd,
                                    *index, tau);
      const auto got = Sorted(VerifyCandidates(std::move(gen.candidates),
                                               doc, *world.dd, tau, {}));
      ASSERT_EQ(got.size(), oracle.size()) << "tau=" << tau;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].token_begin, oracle[i].token_begin);
        EXPECT_EQ(got[i].token_len, oracle[i].token_len);
        EXPECT_EQ(got[i].entity, oracle[i].entity);
        EXPECT_DOUBLE_EQ(got[i].score, oracle[i].score);
      }
    }
  }
}

TEST(VerifierTest, ReportsStats) {
  std::mt19937_64 rng(43);
  auto world = MakeRandomWorld(rng);
  const Document doc = Document::FromTokens(world.doc_tokens);
  auto index = ClusteredIndex::Build(*world.dd);
  auto gen = GenerateCandidates(FilterStrategy::kLazy, doc, *world.dd,
                                *index, 0.8);
  const size_t n_cand = gen.candidates.size();
  VerifyStats stats;
  const auto matches = VerifyCandidates(std::move(gen.candidates), doc,
                                        *world.dd, 0.8, {}, &stats);
  EXPECT_EQ(stats.verified, n_cand);
  EXPECT_EQ(stats.matched, matches.size());
  EXPECT_LE(stats.matched, stats.verified);
}

TEST(VerifierTest, MatchesCarryBestDerived) {
  std::mt19937_64 rng(47);
  auto world = MakeRandomWorld(rng);
  const Document doc = Document::FromTokens(world.doc_tokens);
  auto index = ClusteredIndex::Build(*world.dd);
  auto gen = GenerateCandidates(FilterStrategy::kLazy, doc, *world.dd,
                                *index, 0.7);
  const auto matches =
      VerifyCandidates(std::move(gen.candidates), doc, *world.dd, 0.7, {});
  for (const Match& m : matches) {
    ASSERT_NE(m.best_derived, JaccArScore::kNoDerived);
    EXPECT_EQ(world.dd->origin_of(m.best_derived), m.entity);
  }
}

TEST(VerifierTest, EarlyTerminationMatchesExactVerification) {
  std::mt19937_64 rng(59);
  for (int iter = 0; iter < 15; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    for (double tau : {0.7, 0.85}) {
      auto gen = GenerateCandidates(FilterStrategy::kLazy, doc, *world.dd,
                                    *index, tau);
      auto gen2 = gen;
      const auto fast =
          Sorted(VerifyCandidates(std::move(gen.candidates), doc, *world.dd,
                                  tau, {}, nullptr,
                                  /*early_termination=*/true));
      const auto slow =
          Sorted(VerifyCandidates(std::move(gen2.candidates), doc,
                                  *world.dd, tau, {}, nullptr,
                                  /*early_termination=*/false));
      ASSERT_EQ(fast.size(), slow.size());
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(fast[i], slow[i]);
        EXPECT_DOUBLE_EQ(fast[i].score, slow[i].score);
        EXPECT_EQ(fast[i].best_derived, slow[i].best_derived);
      }
    }
  }
}

// Regression for the window-memo sentinel: the memo key used to start at
// (pos=0, len=0) with a side `have_set` flag, because a first candidate at
// position 0 is a perfectly valid key and must not be mistaken for "no
// window built yet". The sentinel is now kNoWindow (uint32 max), which no
// candidate can carry. This test's FIRST candidate sits at pos=0 with a
// nonzero length, in both verification modes.
TEST(VerifierTest, FirstCandidateAtPositionZeroIsVerified) {
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId a = dict->GetOrAdd("a");
  const TokenId b = dict->GetOrAdd("b");
  dict->GetOrAdd("c");
  std::vector<TokenSeq> entities = {{a, b}};
  auto dd = DerivedDictionary::Build(std::move(entities), RuleSet{},
                                     std::move(dict), {});
  ASSERT_TRUE(dd.ok());
  const Document doc = Document::FromTokens({a, b, a});

  for (bool early_termination : {true, false}) {
    std::vector<Candidate> candidates = {Candidate{0, 2, 0}};
    const auto matches =
        VerifyCandidates(std::move(candidates), doc, **dd, 0.8, {}, nullptr,
                         early_termination);
    ASSERT_EQ(matches.size(), 1u)
        << "early_termination=" << early_termination;
    EXPECT_EQ(matches[0].token_begin, 0u);
    EXPECT_EQ(matches[0].token_len, 2u);
    EXPECT_EQ(matches[0].entity, 0u);
    EXPECT_DOUBLE_EQ(matches[0].score, 1.0);
  }
}

TEST(VerifierTest, EmptyCandidatesEmptyMatches) {
  std::mt19937_64 rng(53);
  auto world = MakeRandomWorld(rng);
  const Document doc = Document::FromTokens(world.doc_tokens);
  EXPECT_TRUE(VerifyCandidates({}, doc, *world.dd, 0.8, {}).empty());
}

}  // namespace
}  // namespace aeetes
