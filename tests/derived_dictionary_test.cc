#include "src/synonym/derived_dictionary.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace aeetes {
namespace {

class DerivedDictionaryTest : public testing::Test {
 protected:
  std::unique_ptr<TokenDictionary> NewDict() {
    auto dict = std::make_unique<TokenDictionary>();
    for (const char* w : {"uq", "au", "university", "of", "queensland",
                          "australia", "purdue", "usa"}) {
      ids_[w] = dict->GetOrAdd(w);
    }
    return dict;
  }

  TokenId Id(const std::string& w) { return ids_.at(w); }

  std::map<std::string, TokenId> ids_;
};

TEST_F(DerivedDictionaryTest, BuildsDerivedEntitiesPerOrigin) {
  auto dict = NewDict();
  RuleSet rules;
  ASSERT_TRUE(
      rules.Add({Id("uq")}, {Id("university"), Id("of"), Id("queensland")})
          .ok());
  ASSERT_TRUE(rules.Add({Id("au")}, {Id("australia")}).ok());
  std::vector<TokenSeq> entities = {{Id("uq"), Id("au")},
                                    {Id("purdue"), Id("usa")}};
  auto dd = DerivedDictionary::Build(std::move(entities), rules,
                                     std::move(dict));
  ASSERT_TRUE(dd.ok());
  EXPECT_EQ((*dd)->num_origins(), 2u);
  const auto [b0, e0] = (*dd)->DerivedRange(0);
  EXPECT_EQ(e0 - b0, 4u);  // paper's four variants of "UQ AU"
  const auto [b1, e1] = (*dd)->DerivedRange(1);
  EXPECT_EQ(e1 - b1, 1u);  // no applicable rules
  for (DerivedId d = b0; d < e0; ++d) {
    EXPECT_EQ((*dd)->origin_of(d), 0u);
  }
}

TEST_F(DerivedDictionaryTest, FreezesDictionaryAndComputesOrderedSets) {
  auto dict = NewDict();
  RuleSet rules;
  ASSERT_TRUE(rules.Add({Id("au")}, {Id("australia")}).ok());
  std::vector<TokenSeq> entities = {{Id("uq"), Id("au")}};
  auto dd =
      DerivedDictionary::Build(std::move(entities), rules, std::move(dict));
  ASSERT_TRUE(dd.ok());
  EXPECT_TRUE((*dd)->token_dict().frozen());
  for (DerivedId d = 0; d < (*dd)->num_derived(); ++d) {
    const Span<TokenId> set = (*dd)->ordered_set(d);
    ASSERT_FALSE(set.empty());
    for (size_t i = 1; i < set.size(); ++i) {
      EXPECT_LT((*dd)->token_dict().Rank(set[i - 1]),
                (*dd)->token_dict().Rank(set[i]));
    }
  }
}

TEST_F(DerivedDictionaryTest, FrequenciesCountDerivedOccurrences) {
  auto dict = NewDict();
  RuleSet rules;
  ASSERT_TRUE(rules.Add({Id("au")}, {Id("australia")}).ok());
  std::vector<TokenSeq> entities = {{Id("uq"), Id("au")}};
  auto dd =
      DerivedDictionary::Build(std::move(entities), rules, std::move(dict));
  ASSERT_TRUE(dd.ok());
  // Derived: {uq au}, {uq australia} -> uq appears twice, au and australia
  // once each. Ids survive the repack into the wired dictionary verbatim.
  const TokenDictionary& wired = (*dd)->token_dict();
  EXPECT_EQ(wired.frequency(Id("uq")), 2u);
  EXPECT_EQ(wired.frequency(Id("au")), 1u);
  EXPECT_EQ(wired.frequency(Id("australia")), 1u);
  EXPECT_EQ(wired.frequency(Id("purdue")), 0u);  // not used by any entity
}

TEST_F(DerivedDictionaryTest, MinMaxSetSizes) {
  auto dict = NewDict();
  RuleSet rules;
  ASSERT_TRUE(
      rules.Add({Id("uq")}, {Id("university"), Id("of"), Id("queensland")})
          .ok());
  std::vector<TokenSeq> entities = {{Id("uq"), Id("au")}};
  auto dd =
      DerivedDictionary::Build(std::move(entities), rules, std::move(dict));
  ASSERT_TRUE(dd.ok());
  EXPECT_EQ((*dd)->min_set_size(), 2u);  // {uq au}
  EXPECT_EQ((*dd)->max_set_size(), 4u);  // {university of queensland au}
}

TEST_F(DerivedDictionaryTest, RejectsEmptyInputs) {
  RuleSet rules;
  EXPECT_FALSE(DerivedDictionary::Build({}, rules,
                                        std::make_unique<TokenDictionary>())
                   .ok());
  auto dict = std::make_unique<TokenDictionary>();
  EXPECT_FALSE(
      DerivedDictionary::Build({{}}, rules, std::move(dict)).ok());
}

TEST_F(DerivedDictionaryTest, RejectsNullOrFrozenDictionary) {
  RuleSet rules;
  EXPECT_FALSE(DerivedDictionary::Build({{0}}, rules, nullptr).ok());
  auto dict = std::make_unique<TokenDictionary>();
  dict->GetOrAdd("x");
  dict->Freeze();
  EXPECT_EQ(DerivedDictionary::Build({{0}}, rules, std::move(dict))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DerivedDictionaryTest, RejectsUninternedEntityTokens) {
  RuleSet rules;
  auto dict = std::make_unique<TokenDictionary>();
  dict->GetOrAdd("only");
  EXPECT_EQ(DerivedDictionary::Build({{5}}, rules, std::move(dict))
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST_F(DerivedDictionaryTest, AvgApplicableRulesStatistic) {
  auto dict = NewDict();
  RuleSet rules;
  ASSERT_TRUE(rules.Add({Id("uq")}, {Id("queensland")}).ok());
  ASSERT_TRUE(rules.Add({Id("au")}, {Id("australia")}).ok());
  std::vector<TokenSeq> entities = {{Id("uq"), Id("au")},
                                    {Id("purdue"), Id("usa")}};
  auto dd =
      DerivedDictionary::Build(std::move(entities), rules, std::move(dict));
  ASSERT_TRUE(dd.ok());
  EXPECT_DOUBLE_EQ((*dd)->avg_applicable_rules(), 1.0);  // (2 + 0) / 2
}

}  // namespace
}  // namespace aeetes
