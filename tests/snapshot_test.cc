#include "src/io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>

#include "src/datagen/generator.h"
#include "src/datagen/profile.h"
#include "src/io/binary_stream.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::Sorted;

class SnapshotTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("aeetes_snap_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

TEST_F(SnapshotTest, RoundTripPreservesExtractionResults) {
  DatasetProfile profile = PubMedLikeProfile();
  profile.num_entities = 200;
  profile.num_documents = 3;
  profile.num_rules = 80;
  profile.doc_len = 120;
  const SyntheticDataset ds = GenerateDataset(profile);

  auto built = Aeetes::BuildFromText(ds.entity_texts, ds.rule_lines);
  ASSERT_TRUE(built.ok());
  auto& original = *built;

  ASSERT_TRUE(SaveSnapshot(*original, path_).ok());
  auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Structural equality.
  const auto& dd_a = original->derived_dictionary();
  const auto& dd_b = (*loaded)->derived_dictionary();
  ASSERT_EQ(dd_a.num_origins(), dd_b.num_origins());
  ASSERT_EQ(dd_a.num_derived(), dd_b.num_derived());
  EXPECT_EQ(dd_a.min_set_size(), dd_b.min_set_size());
  EXPECT_EQ(dd_a.max_set_size(), dd_b.max_set_size());
  EXPECT_DOUBLE_EQ(dd_a.avg_applicable_rules(), dd_b.avg_applicable_rules());
  for (DerivedId d = 0; d < dd_a.num_derived(); ++d) {
    EXPECT_EQ(dd_a.derived()[d].tokens, dd_b.derived()[d].tokens);
    EXPECT_EQ(dd_a.derived()[d].ordered_set, dd_b.derived()[d].ordered_set);
    EXPECT_EQ(dd_a.derived()[d].origin, dd_b.derived()[d].origin);
  }

  // Behavioural equality on every document and threshold.
  for (const std::string& text : ds.documents) {
    Document doc_a = original->EncodeDocument(text);
    Document doc_b = (*loaded)->EncodeDocument(text);
    for (double tau : {0.7, 0.85}) {
      auto ra = original->Extract(doc_a, tau);
      auto rb = (*loaded)->Extract(doc_b, tau);
      ASSERT_TRUE(ra.ok());
      ASSERT_TRUE(rb.ok());
      EXPECT_EQ(Sorted(ra->matches), Sorted(rb->matches)) << "tau=" << tau;
    }
  }
}

TEST_F(SnapshotTest, PreservesRuleWeights) {
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId big = dict->GetOrAdd("big");
  const TokenId apple = dict->GetOrAdd("apple");
  const TokenId ny = dict->GetOrAdd("ny");
  RuleSet rules;
  ASSERT_TRUE(rules.Add({big, apple}, {ny}, 0.7).ok());
  AeetesOptions options;
  options.weighted = true;
  auto built = Aeetes::Build({{big, apple}}, rules, std::move(dict), options);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveSnapshot(**built, path_).ok());
  auto loaded = LoadSnapshot(path_, options);
  ASSERT_TRUE(loaded.ok());
  Document doc = (*loaded)->EncodeDocument("ny pizza");
  auto result = (*loaded)->Extract(doc, 0.6);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  EXPECT_DOUBLE_EQ(result->matches[0].score, 0.7);
}

TEST_F(SnapshotTest, RejectsMissingFile) {
  auto loaded = LoadSnapshot(path_ + ".does-not-exist");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SnapshotTest, RejectsWrongMagic) {
  std::ofstream(path_, std::ios::binary) << "not a snapshot at all";
  auto loaded = LoadSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  auto built = Aeetes::BuildFromText({"alpha beta"}, {});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveSnapshot(**built, path_).ok());
  // Truncate to the first 20 bytes.
  const auto size = std::filesystem::file_size(path_);
  ASSERT_GT(size, 20u);
  std::filesystem::resize_file(path_, 20);
  auto loaded = LoadSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
}

TEST(BinaryStreamTest, PrimitivesRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "aeetes_bin_test.bin")
          .string();
  {
    BinaryWriter w(path);
    w.WriteU32(0xdeadbeef);
    w.WriteU64(1ull << 40);
    w.WriteDouble(0.8);
    w.WriteString("hello");
    w.WriteU32Vector({1, 2, 3});
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 1ull << 40);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 0.8);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadU32Vector(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.ok());
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(BinaryStreamTest, ReadPastEndFails) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "aeetes_bin_eof.bin")
          .string();
  {
    BinaryWriter w(path);
    w.WriteU32(7);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 7u);
  r.ReadU64();
  EXPECT_FALSE(r.ok());
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace
}  // namespace aeetes
