#include "src/io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "src/datagen/generator.h"
#include "src/datagen/profile.h"
#include "src/io/binary_stream.h"
#include "tests/test_util.h"

#ifndef AEETES_DATA_DIR
#define AEETES_DATA_DIR "data"
#endif

namespace aeetes {
namespace {

using testutil::Sorted;

std::vector<TokenId> Copy(Span<TokenId> s) {
  return std::vector<TokenId>(s.begin(), s.end());
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class SnapshotTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("aeetes_snap_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

/// Structural equality of two derived dictionaries through the view API.
void ExpectSameDictionary(const DerivedDictionary& dd_a,
                          const DerivedDictionary& dd_b) {
  ASSERT_EQ(dd_a.num_origins(), dd_b.num_origins());
  ASSERT_EQ(dd_a.num_derived(), dd_b.num_derived());
  EXPECT_EQ(dd_a.min_set_size(), dd_b.min_set_size());
  EXPECT_EQ(dd_a.max_set_size(), dd_b.max_set_size());
  EXPECT_DOUBLE_EQ(dd_a.avg_applicable_rules(), dd_b.avg_applicable_rules());
  for (DerivedId d = 0; d < dd_a.num_derived(); ++d) {
    const DerivedView a = dd_a.derived(d);
    const DerivedView b = dd_b.derived(d);
    EXPECT_EQ(Copy(a.tokens), Copy(b.tokens));
    EXPECT_EQ(Copy(a.ordered_set), Copy(b.ordered_set));
    EXPECT_EQ(a.origin, b.origin);
  }
  for (EntityId e = 0; e < dd_a.num_origins(); ++e) {
    EXPECT_EQ(Copy(dd_a.origin_entity(e)), Copy(dd_b.origin_entity(e)));
  }
}

/// Behavioural equality: both engines extract the same (entity, span,
/// score) sets from every document at every threshold.
void ExpectSameExtraction(Aeetes& a, Aeetes& b,
                          const std::vector<std::string>& documents) {
  for (const std::string& text : documents) {
    Document doc_a = a.EncodeDocument(text);
    Document doc_b = b.EncodeDocument(text);
    for (double tau : {0.7, 0.85}) {
      auto ra = a.Extract(doc_a, tau);
      auto rb = b.Extract(doc_b, tau);
      ASSERT_TRUE(ra.ok());
      ASSERT_TRUE(rb.ok());
      const auto ma = Sorted(ra->matches);
      const auto mb = Sorted(rb->matches);
      ASSERT_EQ(ma.size(), mb.size()) << "tau=" << tau;
      for (size_t i = 0; i < ma.size(); ++i) {
        EXPECT_EQ(ma[i].token_begin, mb[i].token_begin);
        EXPECT_EQ(ma[i].token_len, mb[i].token_len);
        EXPECT_EQ(ma[i].entity, mb[i].entity);
        EXPECT_DOUBLE_EQ(ma[i].score, mb[i].score) << "tau=" << tau;
      }
    }
  }
}

SyntheticDataset SmallDataset() {
  DatasetProfile profile = PubMedLikeProfile();
  profile.num_entities = 200;
  profile.num_documents = 3;
  profile.num_rules = 80;
  profile.doc_len = 120;
  return GenerateDataset(profile);
}

TEST_F(SnapshotTest, RoundTripPreservesExtractionResults) {
  const SyntheticDataset ds = SmallDataset();
  auto built = Aeetes::BuildFromText(ds.entity_texts, ds.rule_lines);
  ASSERT_TRUE(built.ok());
  auto& original = *built;

  ASSERT_TRUE(SaveSnapshot(*original, path_).ok());
  auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE((*loaded)->image().stats().mmap_backed);

  ExpectSameDictionary(original->derived_dictionary(),
                       (*loaded)->derived_dictionary());
  ExpectSameExtraction(*original, **loaded, ds.documents);
}

TEST_F(SnapshotTest, V1RoundTripPreservesExtractionResults) {
  const SyntheticDataset ds = SmallDataset();
  auto built = Aeetes::BuildFromText(ds.entity_texts, ds.rule_lines);
  ASSERT_TRUE(built.ok());
  auto& original = *built;

  ASSERT_TRUE(SaveSnapshotV1(*original, path_).ok());
  auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE((*loaded)->image().stats().mmap_backed);

  ExpectSameDictionary(original->derived_dictionary(),
                       (*loaded)->derived_dictionary());
  ExpectSameExtraction(*original, **loaded, ds.documents);
}

TEST_F(SnapshotTest, PreservesRuleWeights) {
  for (const bool v1 : {false, true}) {
    auto dict = std::make_unique<TokenDictionary>();
    const TokenId big = dict->GetOrAdd("big");
    const TokenId apple = dict->GetOrAdd("apple");
    const TokenId ny = dict->GetOrAdd("ny");
    RuleSet rules;
    ASSERT_TRUE(rules.Add({big, apple}, {ny}, 0.7).ok());
    AeetesOptions options;
    options.weighted = true;
    auto built =
        Aeetes::Build({{big, apple}}, rules, std::move(dict), options);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((v1 ? SaveSnapshotV1(**built, path_)
                    : SaveSnapshot(**built, path_))
                    .ok());
    auto loaded = LoadSnapshot(path_, options);
    ASSERT_TRUE(loaded.ok()) << "v1=" << v1 << ": " << loaded.status();
    Document doc = (*loaded)->EncodeDocument("ny pizza");
    auto result = (*loaded)->Extract(doc, 0.6);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->matches.size(), 1u);
    EXPECT_DOUBLE_EQ(result->matches[0].score, 0.7);
  }
}

TEST_F(SnapshotTest, PublishesSnapshotGauges) {
  auto built = Aeetes::BuildFromText({"alpha beta", "gamma"}, {});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveSnapshot(**built, path_).ok());
  auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_NE((*loaded)->metrics().FindGauge("snapshot.load_us"), nullptr);
  const auto* bytes = (*loaded)->metrics().FindGauge("snapshot.bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(static_cast<uintmax_t>(bytes->value()),
            std::filesystem::file_size(path_));
  const auto* mmap = (*loaded)->metrics().FindGauge("snapshot.mmap");
  ASSERT_NE(mmap, nullptr);
  EXPECT_EQ(mmap->value(), 1);
}

TEST_F(SnapshotTest, RejectsMissingFile) {
  auto loaded = LoadSnapshot(path_ + ".does-not-exist");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SnapshotTest, RejectsWrongMagic) {
  std::ofstream(path_, std::ios::binary) << "not a snapshot at all";
  auto loaded = LoadSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RejectsUnsupportedVersion) {
  auto built = Aeetes::BuildFromText({"alpha beta"}, {});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveSnapshot(**built, path_).ok());
  std::vector<uint8_t> bytes = ReadFileBytes(path_);
  ASSERT_GE(bytes.size(), 8u);
  bytes[4] = 99;  // version field, little-endian low byte
  WriteFileBytes(path_, bytes);
  auto loaded = LoadSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  auto built = Aeetes::BuildFromText({"alpha beta"}, {});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveSnapshot(**built, path_).ok());
  const std::vector<uint8_t> full = ReadFileBytes(path_);
  ASSERT_GT(full.size(), 128u);
  // Ladder of truncation points: empty file, partial header, partial
  // section table, partial payloads, and one byte short of complete.
  for (const size_t keep :
       {size_t{0}, size_t{1}, size_t{8}, size_t{20}, size_t{63}, size_t{64},
        full.size() / 4, full.size() / 2, full.size() - 1}) {
    WriteFileBytes(path_,
                   std::vector<uint8_t>(full.begin(), full.begin() + keep));
    auto loaded = LoadSnapshot(path_);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << keep << " bytes";
  }
}

/// Deterministic corruption fuzz over the v2 image. Every corrupted file
/// must either fail to load with a Status (never crash) or — when the flip
/// lands in alignment padding or unused reserved bytes — load and produce
/// results bit-identical to the pristine engine.
TEST_F(SnapshotTest, V2BitFlipsNeverCrashOrCorrupt) {
  auto built = Aeetes::BuildFromText(
      {"big apple pizza", "new york city", "alpha beta gamma", "delta"},
      {"big apple <=> new york"});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveSnapshot(**built, path_).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path_);
  ASSERT_GT(pristine.size(), 0u);

  const std::string text = "went to the big apple for new york pizza";
  Document doc = (*built)->EncodeDocument(text);
  auto baseline = (*built)->Extract(doc, 0.6);
  ASSERT_TRUE(baseline.ok());
  const auto expected = Sorted(baseline->matches);

  size_t rejected = 0, survived = 0;
  for (size_t pos = 0; pos < pristine.size(); pos += 97) {
    std::vector<uint8_t> bytes = pristine;
    bytes[pos] ^= 0xFF;
    WriteFileBytes(path_, bytes);
    auto loaded = LoadSnapshot(path_);
    if (!loaded.ok()) {
      ++rejected;
      continue;
    }
    ++survived;
    Document d = (*loaded)->EncodeDocument(text);
    auto result = (*loaded)->Extract(d, 0.6);
    ASSERT_TRUE(result.ok()) << "flip at byte " << pos;
    EXPECT_EQ(Sorted(result->matches), expected) << "flip at byte " << pos;
  }
  // The checksummed sections dominate the file, so most flips must be
  // caught; a handful landing in padding/reserved bytes may survive.
  EXPECT_GT(rejected, 0u);
  SUCCEED() << rejected << " flips rejected, " << survived << " benign";
}

/// The v1 reader must survive the same fuzz without crashing; v1 carries no
/// checksums, so corrupted loads may succeed with different content — the
/// only contract is structural safety (bounded reads, Status on failure).
TEST_F(SnapshotTest, V1BitFlipsNeverCrash) {
  auto built = Aeetes::BuildFromText(
      {"big apple pizza", "new york city", "alpha beta gamma"},
      {"big apple <=> new york"});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveSnapshotV1(**built, path_).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path_);
  ASSERT_GT(pristine.size(), 0u);

  for (size_t pos = 0; pos < pristine.size(); pos += 53) {
    std::vector<uint8_t> bytes = pristine;
    bytes[pos] ^= 0xFF;
    WriteFileBytes(path_, bytes);
    auto loaded = LoadSnapshot(path_);  // must not crash; result is free
    (void)loaded;
  }
}

/// Cross-backing equivalence on the real institutions dataset: the engine
/// built in memory, the one rebuilt from a v1 snapshot, and the one mmapped
/// from a v2 snapshot must produce identical (entity, span, score) sets
/// under all four filtering strategies.
TEST_F(SnapshotTest, CrossBackingEquivalenceOnInstitutions) {
  const std::string dir = std::string(AEETES_DATA_DIR) + "/institutions";
  const auto entities = ReadLines(dir + "/entities.txt");
  const auto rules = ReadLines(dir + "/rules.txt");
  const auto documents = ReadLines(dir + "/documents.txt");
  if (entities.empty() || documents.empty()) {
    GTEST_SKIP() << "data/institutions not found at " << dir;
  }

  for (const FilterStrategy strategy :
       {FilterStrategy::kSimple, FilterStrategy::kSkip,
        FilterStrategy::kDynamic, FilterStrategy::kLazy}) {
    AeetesOptions options;
    options.strategy = strategy;
    auto built = Aeetes::BuildFromText(entities, rules, options);
    ASSERT_TRUE(built.ok()) << built.status();

    for (const bool v1 : {false, true}) {
      ASSERT_TRUE((v1 ? SaveSnapshotV1(**built, path_)
                      : SaveSnapshot(**built, path_))
                      .ok());
      auto loaded = LoadSnapshot(path_, options);
      ASSERT_TRUE(loaded.ok())
          << "strategy=" << static_cast<int>(strategy) << " v1=" << v1
          << ": " << loaded.status();
      ExpectSameExtraction(**built, **loaded, documents);
    }
  }
}

TEST(BinaryStreamTest, PrimitivesRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "aeetes_bin_test.bin")
          .string();
  {
    BinaryWriter w(path);
    w.WriteU32(0xdeadbeef);
    w.WriteU64(1ull << 40);
    w.WriteDouble(0.8);
    w.WriteString("hello");
    w.WriteU32Vector({1, 2, 3});
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 1ull << 40);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 0.8);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadU32Vector(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.ok());
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(BinaryStreamTest, ReadPastEndFails) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "aeetes_bin_eof.bin")
          .string();
  {
    BinaryWriter w(path);
    w.WriteU32(7);
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 7u);
  r.ReadU64();
  EXPECT_FALSE(r.ok());
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

/// A declared element count far past the end of the file must fail cleanly
/// without attempting the allocation it promises.
TEST(BinaryStreamTest, HugeDeclaredCountFailsWithoutAllocating) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "aeetes_bin_huge.bin")
          .string();
  {
    BinaryWriter w(path);
    w.WriteU32(0xFFFFFFF0u);  // element count with no elements following
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  const auto v = r.ReadU32Vector();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace
}  // namespace aeetes
