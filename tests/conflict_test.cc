#include "src/synonym/conflict.h"

#include <gtest/gtest.h>

#include <random>

namespace aeetes {
namespace {

ApplicableRule MakeApp(RuleId rule, size_t begin, size_t len) {
  return ApplicableRule{rule, begin, len, {100 + rule}, 1.0};
}

TEST(GroupBySpanTest, GroupsIdenticalSpans) {
  std::vector<ApplicableRule> apps = {MakeApp(0, 0, 2), MakeApp(1, 0, 2),
                                      MakeApp(2, 2, 1)};
  const auto groups = GroupBySpan(std::move(apps));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].begin, 0u);
  EXPECT_EQ(groups[0].rules.size(), 2u);
  EXPECT_EQ(groups[1].begin, 2u);
  EXPECT_EQ(groups[1].rules.size(), 1u);
}

TEST(SelectNonConflictTest, DisjointGroupsAllSelected) {
  std::vector<ApplicableRule> apps = {MakeApp(0, 0, 1), MakeApp(1, 1, 1),
                                      MakeApp(2, 2, 2)};
  for (CliqueMode mode : {CliqueMode::kGreedy, CliqueMode::kExact}) {
    const auto sel = SelectNonConflictGroups(apps, mode);
    EXPECT_EQ(sel.size(), 3u);
    EXPECT_EQ(TotalRules(sel), 3u);
  }
}

TEST(SelectNonConflictTest, PaperFigure7Example) {
  // Entity {a,b,c,d}: v1 = 3 rules on span [0,2) ("a b"), v2 = 1 rule on
  // span [2,3) ("c"), v3 = 1 rule on span [3,4) ("d"), plus a conflicting
  // vertex on span [1,3) ("b c"). Optimal clique = {v1, v2, v3} with
  // weight 5.
  std::vector<ApplicableRule> apps = {
      MakeApp(0, 0, 2), MakeApp(1, 0, 2), MakeApp(2, 0, 2),  // v1
      MakeApp(3, 2, 1),                                      // v2
      MakeApp(4, 3, 1),                                      // v3
      MakeApp(5, 1, 2),                                      // conflicts v1,v2
  };
  for (CliqueMode mode : {CliqueMode::kGreedy, CliqueMode::kExact}) {
    const auto sel = SelectNonConflictGroups(apps, mode);
    EXPECT_EQ(TotalRules(sel), 5u) << "mode=" << static_cast<int>(mode);
    ASSERT_EQ(sel.size(), 3u);
    EXPECT_EQ(sel[0].begin, 0u);
    EXPECT_EQ(sel[1].begin, 2u);
    EXPECT_EQ(sel[2].begin, 3u);
  }
}

TEST(SelectNonConflictTest, GreedyCanBeSuboptimalButExactIsNot) {
  // One heavy group overlapping two groups whose combined weight is
  // higher: greedy picks the heavy one (weight 3), exact picks the pair
  // (weight 4).
  std::vector<ApplicableRule> apps = {
      MakeApp(0, 0, 3), MakeApp(1, 0, 3), MakeApp(2, 0, 3),   // heavy [0,3)
      MakeApp(3, 0, 1), MakeApp(4, 0, 1),                     // [0,1) w=2
      MakeApp(5, 1, 2), MakeApp(6, 1, 2),                     // [1,3) w=2
  };
  const auto greedy = SelectNonConflictGroups(apps, CliqueMode::kGreedy);
  EXPECT_EQ(TotalRules(greedy), 3u);
  const auto exact = SelectNonConflictGroups(apps, CliqueMode::kExact);
  EXPECT_EQ(TotalRules(exact), 4u);
}

TEST(SelectNonConflictTest, EmptyInput) {
  EXPECT_TRUE(SelectNonConflictGroups({}, CliqueMode::kGreedy).empty());
  EXPECT_TRUE(SelectNonConflictGroups({}, CliqueMode::kExact).empty());
}

TEST(SelectNonConflictTest, ResultsSortedAndNonOverlapping) {
  std::mt19937_64 rng(5);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<ApplicableRule> apps;
    const size_t n = 1 + rng() % 12;
    for (size_t i = 0; i < n; ++i) {
      const size_t begin = rng() % 8;
      const size_t len = 1 + rng() % 3;
      apps.push_back(MakeApp(static_cast<RuleId>(i), begin, len));
    }
    for (CliqueMode mode : {CliqueMode::kGreedy, CliqueMode::kExact}) {
      const auto sel = SelectNonConflictGroups(apps, mode);
      for (size_t i = 1; i < sel.size(); ++i) {
        EXPECT_LE(sel[i - 1].end(), sel[i].begin);  // sorted & disjoint
      }
    }
  }
}

TEST(SelectNonConflictPropertyTest, ExactAtLeastGreedy) {
  std::mt19937_64 rng(17);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<ApplicableRule> apps;
    const size_t n = 1 + rng() % 10;
    for (size_t i = 0; i < n; ++i) {
      apps.push_back(
          MakeApp(static_cast<RuleId>(i), rng() % 10, 1 + rng() % 4));
    }
    const size_t greedy =
        TotalRules(SelectNonConflictGroups(apps, CliqueMode::kGreedy));
    const size_t exact =
        TotalRules(SelectNonConflictGroups(apps, CliqueMode::kExact));
    EXPECT_GE(exact, greedy);
  }
}

}  // namespace
}  // namespace aeetes
