// Adversarial-input tests: duplicate-heavy documents (where window length
// and distinct-set size diverge), repeated-token entities, extreme
// thresholds and degenerate dictionaries. All compare the full pipeline
// and FaerieR against the brute-force oracle.

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "src/baseline/brute_force.h"
#include "src/baseline/faerie_r.h"
#include "src/core/aeetes.h"
#include "src/core/candidate_generator.h"
#include "src/index/clustered_index.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::Sorted;

/// A world whose documents are dominated by very few distinct tokens, so
/// nearly every window carries duplicates.
struct DuplicateWorld {
  std::unique_ptr<DerivedDictionary> dd;
  TokenSeq doc_tokens;
};

DuplicateWorld MakeDuplicateWorld(std::mt19937_64& rng) {
  auto dict = std::make_unique<TokenDictionary>();
  std::vector<TokenId> ids;
  for (size_t i = 0; i < 6; ++i) {  // tiny vocabulary -> heavy repetition
    ids.push_back(dict->GetOrAdd(testutil::NumberedName("d", i)));
  }
  std::vector<TokenSeq> entities;
  for (size_t i = 0; i < 8; ++i) {
    TokenSeq e;
    const size_t len = 1 + rng() % 4;
    for (size_t j = 0; j < len; ++j) e.push_back(ids[rng() % ids.size()]);
    entities.push_back(std::move(e));
  }
  RuleSet rules;
  for (int i = 0; i < 4; ++i) {
    TokenSeq lhs = {ids[rng() % ids.size()]};
    TokenSeq rhs = {ids[rng() % ids.size()], ids[rng() % ids.size()]};
    auto r = rules.Add(std::move(lhs), std::move(rhs));
    (void)r;
  }
  DuplicateWorld world;
  for (size_t i = 0; i < 70; ++i) {
    world.doc_tokens.push_back(ids[rng() % ids.size()]);
  }
  auto dd = DerivedDictionary::Build(std::move(entities), rules,
                                     std::move(dict));
  world.dd = std::move(*dd);
  return world;
}

TEST(AdversarialTest, DuplicateHeavyDocumentsStayConsistent) {
  std::mt19937_64 rng(3001);
  for (int iter = 0; iter < 20; ++iter) {
    auto world = MakeDuplicateWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    for (double tau : {0.6, 0.8, 1.0}) {
      const auto oracle = Sorted(BruteForceExtract(doc, *world.dd, tau));
      for (FilterStrategy s :
           {FilterStrategy::kSimple, FilterStrategy::kSkip,
            FilterStrategy::kDynamic, FilterStrategy::kLazy}) {
        auto gen = GenerateCandidates(s, doc, *world.dd, *index, tau);
        const auto got = Sorted(VerifyCandidates(std::move(gen.candidates),
                                                 doc, *world.dd, tau, {}));
        EXPECT_EQ(got, oracle)
            << FilterStrategyName(s) << " tau=" << tau << " iter=" << iter;
      }
    }
  }
}

TEST(AdversarialTest, DuplicateHeavyFaerieRAgrees) {
  std::mt19937_64 rng(3003);
  for (int iter = 0; iter < 15; ++iter) {
    auto world = MakeDuplicateWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto fr = FaerieR::Build(*world.dd);
    ASSERT_TRUE(fr.ok());
    const double tau = 0.8;
    const auto oracle = Sorted(BruteForceExtract(doc, *world.dd, tau));
    const auto got = Sorted((*fr)->Extract(doc, tau));
    ASSERT_EQ(got.size(), oracle.size()) << "iter=" << iter;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].token_begin, oracle[i].token_begin);
      EXPECT_EQ(got[i].token_len, oracle[i].token_len);
      EXPECT_EQ(got[i].entity, oracle[i].entity);
    }
  }
}

TEST(AdversarialTest, ThresholdOneIsExactSetMatch) {
  auto built = Aeetes::BuildFromText({"alpha beta gamma"},
                                     {"ab <=> alpha beta"});
  ASSERT_TRUE(built.ok());
  Document doc = (*built)->EncodeDocument(
      "alpha beta gamma and ab gamma and alpha gamma beta");
  auto result = (*built)->Extract(doc, 1.0);
  ASSERT_TRUE(result.ok());
  // tau = 1.0 requires set equality: the literal mention, the rewritten
  // "ab gamma", and the permuted "alpha gamma beta" (sets are unordered).
  EXPECT_EQ(result->matches.size(), 3u);
  for (const Match& m : result->matches) {
    EXPECT_DOUBLE_EQ(m.score, 1.0);
  }
}

TEST(AdversarialTest, EntityWithAllIdenticalTokens) {
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId a = dict->GetOrAdd("repeat");
  RuleSet rules;
  auto dd = DerivedDictionary::Build({{a, a, a}}, rules, std::move(dict));
  ASSERT_TRUE(dd.ok());
  // The ordered set of {repeat, repeat, repeat} is a single token.
  EXPECT_EQ((*dd)->min_set_size(), 1u);
  auto built = Aeetes::FromDerivedDictionary(std::move(*dd));
  ASSERT_TRUE(built.ok());
  Document doc = Document::FromTokens({a, a});
  auto result = (*built)->Extract(doc, 0.9);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->matches.empty());
  EXPECT_DOUBLE_EQ(result->matches[0].score, 1.0);
}

TEST(AdversarialTest, DocumentShorterThanSmallestWindow) {
  auto built = Aeetes::BuildFromText({"one two three four five"}, {});
  ASSERT_TRUE(built.ok());
  Document doc = (*built)->EncodeDocument("one");
  auto result = (*built)->Extract(doc, 0.9);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.empty());
}

TEST(AdversarialTest, SingleEntityDictionarySpanningWholeDocument) {
  auto built = Aeetes::BuildFromText({"a b c d e"}, {});
  ASSERT_TRUE(built.ok());
  Document doc = (*built)->EncodeDocument("a b c d e");
  auto result = (*built)->Extract(doc, 1.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  EXPECT_EQ(result->matches[0].token_len, 5u);
}

TEST(AdversarialTest, RuleChainDoesNotRecurse) {
  // a -> b and b -> c: derivation must not apply rules to rewritten
  // output (each original token rewritten at most once), so "c" alone is
  // reachable only from entity "b", never from "a" via two hops.
  auto dict = std::make_unique<TokenDictionary>();
  const TokenId a = dict->GetOrAdd("a");
  const TokenId b = dict->GetOrAdd("b");
  const TokenId c = dict->GetOrAdd("c");
  RuleSet rules;
  ASSERT_TRUE(rules.Add({a}, {b}).ok());
  ASSERT_TRUE(rules.Add({b}, {c}).ok());
  auto dd = DerivedDictionary::Build({{a}}, rules, std::move(dict));
  ASSERT_TRUE(dd.ok());
  auto built = Aeetes::FromDerivedDictionary(std::move(*dd));
  ASSERT_TRUE(built.ok());
  Document doc = Document::FromTokens({c});
  auto result = (*built)->Extract(doc, 0.9);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.empty());  // "c" is NOT a derived form of "a"
  Document doc_b = Document::FromTokens({b});
  auto result_b = (*built)->Extract(doc_b, 0.9);
  ASSERT_TRUE(result_b.ok());
  EXPECT_EQ(result_b->matches.size(), 1u);  // one hop is fine
}

}  // namespace
}  // namespace aeetes
