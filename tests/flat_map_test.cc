#include "src/common/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace aeetes {
namespace {

TEST(FlatMapTest, InsertAndFind) {
  FlatMap<uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(7u), nullptr);

  auto [v, inserted] = m.TryEmplace(7);
  ASSERT_TRUE(inserted);
  *v = 42;
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.Find(7u), nullptr);
  EXPECT_EQ(*m.Find(7u), 42);
  EXPECT_TRUE(m.Contains(7u));
  EXPECT_FALSE(m.Contains(8u));

  auto [v2, inserted2] = m.TryEmplace(7);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(v2, m.Find(7u));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, ClearDropsEntriesButKeepsCapacity) {
  FlatMap<uint32_t, int> m;
  for (uint32_t k = 0; k < 100; ++k) *m.TryEmplace(k).first = static_cast<int>(k);
  const size_t cap = m.capacity();
  ASSERT_GT(cap, 0u);

  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  for (uint32_t k = 0; k < 100; ++k) {
    EXPECT_EQ(m.Find(k), nullptr) << "key " << k << " survived Clear()";
  }
}

// The documented reuse contract: after Clear(), re-inserting a key reports
// inserted == true but the slot may still hold the previous epoch's value.
// This is what lets vector payloads keep their heap capacity across
// documents — callers must fully reset the value, not assume it is fresh.
TEST(FlatMapTest, TryEmplaceAfterClearReturnsStaleValue) {
  FlatMap<uint32_t, std::vector<int>> m;
  m.TryEmplace(5).first->assign({1, 2, 3});
  const int* heap = m.Find(5u)->data();

  m.Clear();
  auto [v, inserted] = m.TryEmplace(5);
  ASSERT_TRUE(inserted);  // the key was logically absent...
  EXPECT_GE(v->capacity(), 3u);  // ...but the old buffer is still attached
  EXPECT_EQ(v->data(), heap);  // same heap block: no allocation happened
  v->clear();  // the caller-side reset the contract requires
  v->push_back(9);
  EXPECT_EQ(m.Find(5u)->size(), 1u);
}

TEST(FlatMapTest, GrowthRehashPreservesEntries) {
  FlatMap<uint64_t, uint64_t> m;
  constexpr uint64_t kN = 10000;
  for (uint64_t k = 0; k < kN; ++k) *m.TryEmplace(k * 0x10001).first = k;
  EXPECT_EQ(m.size(), kN);
  for (uint64_t k = 0; k < kN; ++k) {
    const uint64_t* v = m.Find(k * 0x10001);
    ASSERT_NE(v, nullptr) << "lost key " << k * 0x10001 << " across rehash";
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(m.Find(uint64_t{1}), nullptr);
}

TEST(FlatMapTest, ReserveAvoidsRehashDuringInsertion) {
  FlatMap<uint32_t, int> m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  for (uint32_t k = 0; k < 1000; ++k) *m.TryEmplace(k).first = 0;
  EXPECT_EQ(m.capacity(), cap) << "Reserve(1000) did not pre-size for 1000";
}

TEST(FlatMapTest, ManyClearCyclesStayCorrect) {
  FlatMap<uint32_t, uint32_t> m;
  for (uint32_t round = 0; round < 1000; ++round) {
    m.Clear();
    for (uint32_t k = 0; k < 20; ++k) {
      *m.TryEmplace(round + k).first = round ^ k;
    }
    EXPECT_EQ(m.size(), 20u);
    for (uint32_t k = 0; k < 20; ++k) {
      ASSERT_NE(m.Find(round + k), nullptr);
      EXPECT_EQ(*m.Find(round + k), round ^ k);
    }
    // Keys from two rounds ago must be gone (round + 19 < round + 2 fails
    // only when the window overlaps, so probe one clearly outside it).
    if (round >= 2) {
      EXPECT_EQ(m.Find(round - 2), nullptr);
    }
  }
}

TEST(FlatMapTest, AdversarialKeysSpreadViaMixer) {
  // Dense sequential ids and stride patterns are the actual hot-path key
  // distributions (TokenIds, packed window ids); all must remain findable.
  FlatMap<uint64_t, int> m;
  std::unordered_set<uint64_t> keys;
  for (uint64_t k = 0; k < 512; ++k) keys.insert(k);            // dense
  for (uint64_t k = 0; k < 512; ++k) keys.insert(k << 32);      // high bits
  for (uint64_t k = 0; k < 512; ++k) keys.insert(k * 1024);     // stride
  for (uint64_t k : keys) *m.TryEmplace(k).first = 1;
  EXPECT_EQ(m.size(), keys.size());
  for (uint64_t k : keys) EXPECT_TRUE(m.Contains(k));
}

TEST(FlatSetTest, InsertSemantics) {
  FlatSet<uint64_t> s;
  EXPECT_TRUE(s.Insert(3));
  EXPECT_FALSE(s.Insert(3));
  EXPECT_TRUE(s.Insert(4));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(5));

  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(3));
  EXPECT_TRUE(s.Insert(3));  // insertable again after Clear
}

TEST(FlatSetTest, FullWidth64BitKeysDoNotAlias) {
  // Regression companion to the candidate-key collision fix: keys that
  // collided under the old packed (pos << 38 | len << 30 | origin) scheme
  // are distinct full-width inputs here and must stay distinct.
  const uint64_t a = (uint64_t{10} << 38) | (uint64_t{259} << 30) | 1;
  const uint64_t b = (uint64_t{11} << 38) | (uint64_t{3} << 30) | 1;
  ASSERT_EQ(a, b) << "test premise: these packed forms alias";
  FlatSet<uint64_t> s;
  EXPECT_TRUE(s.Insert(uint64_t{10} * 1000 + 259));
  EXPECT_TRUE(s.Insert(uint64_t{11} * 1000 + 3));
  EXPECT_EQ(s.size(), 2u);
}

}  // namespace
}  // namespace aeetes
