#include "src/index/clustered_index.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

namespace aeetes {
namespace {

class ClusteredIndexTest : public testing::Test {
 protected:
  void Build() {
    auto dict = std::make_unique<TokenDictionary>();
    for (const char* w : {"uq", "au", "university", "of", "queensland",
                          "australia", "purdue", "usa"}) {
      ids_[w] = dict->GetOrAdd(w);
    }
    RuleSet rules;
    ASSERT_TRUE(rules
                    .Add({Id("uq")},
                         {Id("university"), Id("of"), Id("queensland")})
                    .ok());
    ASSERT_TRUE(rules.Add({Id("au")}, {Id("australia")}).ok());
    std::vector<TokenSeq> entities = {{Id("uq"), Id("au")},
                                      {Id("purdue"), Id("usa")},
                                      {Id("purdue"), Id("university"), Id("usa")}};
    auto dd = DerivedDictionary::Build(std::move(entities), rules,
                                       std::move(dict));
    ASSERT_TRUE(dd.ok());
    dd_ = std::move(*dd);
    index_ = ClusteredIndex::Build(*dd_);
  }

  TokenId Id(const std::string& w) { return ids_.at(w); }

  std::map<std::string, TokenId> ids_;
  std::unique_ptr<DerivedDictionary> dd_;
  std::unique_ptr<ClusteredIndex> index_;
};

TEST_F(ClusteredIndexTest, EveryDerivedTokenHasOnePosting) {
  Build();
  size_t expected = 0;
  for (DerivedId d = 0; d < dd_->num_derived(); ++d) {
    expected += dd_->ordered_set(d).size();
  }
  EXPECT_EQ(index_->num_entries(), expected);
}

TEST_F(ClusteredIndexTest, PostingPositionsMatchOrderedSets) {
  Build();
  for (TokenId t = 0; t < dd_->token_dict().size(); ++t) {
    const auto list = index_->list(t);
    for (uint32_t g = list.begin; g < list.end; ++g) {
      const LengthGroup& lg = index_->length_groups()[g];
      for (uint32_t og = lg.begin; og < lg.end; ++og) {
        const OriginGroup& origin_group = index_->origin_groups()[og];
        for (uint32_t i = origin_group.begin; i < origin_group.end; ++i) {
          const PostingEntry& e = index_->entries()[i];
          const DerivedView de = dd_->derived(e.derived);
          ASSERT_LT(e.pos, de.ordered_set.size());
          EXPECT_EQ(de.ordered_set[e.pos], t);
          EXPECT_EQ(de.ordered_set.size(), lg.length);
          EXPECT_EQ(de.origin, origin_group.origin);
        }
      }
    }
  }
}

TEST_F(ClusteredIndexTest, LengthGroupsAreSortedAscending) {
  Build();
  for (TokenId t = 0; t < dd_->token_dict().size(); ++t) {
    const auto list = index_->list(t);
    for (uint32_t g = list.begin + 1; g < list.end; ++g) {
      EXPECT_LT(index_->length_groups()[g - 1].length,
                index_->length_groups()[g].length);
    }
  }
}

TEST_F(ClusteredIndexTest, OriginGroupsClusterWithinLengthGroups) {
  Build();
  for (TokenId t = 0; t < dd_->token_dict().size(); ++t) {
    const auto list = index_->list(t);
    for (uint32_t g = list.begin; g < list.end; ++g) {
      const LengthGroup& lg = index_->length_groups()[g];
      std::set<EntityId> seen;
      for (uint32_t og = lg.begin; og < lg.end; ++og) {
        // Each origin appears in at most one group per (token, length).
        EXPECT_TRUE(
            seen.insert(index_->origin_groups()[og].origin).second);
      }
    }
  }
}

TEST_F(ClusteredIndexTest, UnknownTokensHaveEmptyLists) {
  Build();
  EXPECT_TRUE(index_->list(999999).empty());
}

TEST_F(ClusteredIndexTest, SharedTokenAppearsUnderBothOrigins) {
  Build();
  // "university" occurs in derived entities of origin 0 (via rule) and in
  // origin 2 directly.
  const auto list = index_->list(Id("university"));
  ASSERT_FALSE(list.empty());
  std::set<EntityId> origins;
  for (uint32_t g = list.begin; g < list.end; ++g) {
    const LengthGroup& lg = index_->length_groups()[g];
    for (uint32_t og = lg.begin; og < lg.end; ++og) {
      origins.insert(index_->origin_groups()[og].origin);
    }
  }
  EXPECT_TRUE(origins.count(0));
  EXPECT_TRUE(origins.count(2));
}

TEST_F(ClusteredIndexTest, MemoryBytesIsPositive) {
  Build();
  EXPECT_GT(index_->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace aeetes
