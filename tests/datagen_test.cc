#include "src/datagen/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/datagen/profile.h"
#include "src/datagen/stats.h"
#include "src/datagen/vocab.h"
#include "src/datagen/zipf.h"
#include "src/synonym/rule.h"
#include "src/text/token_dictionary.h"
#include "src/text/tokenizer.h"

namespace aeetes {
namespace {

TEST(SyntheticWordTest, DeterministicAndDistinct) {
  std::set<std::string> seen;
  for (size_t i = 0; i < 20000; ++i) {
    const std::string w = SyntheticWord(i);
    EXPECT_FALSE(w.empty());
    EXPECT_TRUE(seen.insert(w).second) << "collision at " << i << ": " << w;
    EXPECT_EQ(w, SyntheticWord(i));
  }
}

TEST(SyntheticWordTest, WordsSurviveTokenization) {
  Tokenizer t;
  for (size_t i = 0; i < 500; ++i) {
    const auto toks = t.TokenizeToStrings(SyntheticWord(i));
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0], SyntheticWord(i));
  }
}

TEST(ZipfTest, SkewsTowardLowIndices) {
  ZipfDistribution zipf(1000, 1.0);
  std::mt19937_64 rng(3);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (zipf(rng) < 10) ++low;
  }
  // The top-10 of a 1000-item Zipf(1.0) carries ~39% of the mass.
  EXPECT_GT(low, total / 4);
  EXPECT_LT(low, total * 3 / 5);
}

TEST(ZipfTest, StaysInRange) {
  ZipfDistribution zipf(7, 1.2);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf(rng), 7u);
  }
}

class GeneratorTest : public testing::Test {
 protected:
  static DatasetProfile SmallProfile() {
    DatasetProfile p = PubMedLikeProfile();
    p.num_entities = 150;
    p.num_documents = 4;
    p.num_rules = 60;
    p.doc_len = 120;
    return p;
  }
};

TEST_F(GeneratorTest, DeterministicForFixedSeed) {
  const auto a = GenerateDataset(SmallProfile());
  const auto b = GenerateDataset(SmallProfile());
  EXPECT_EQ(a.entity_texts, b.entity_texts);
  EXPECT_EQ(a.rule_lines, b.rule_lines);
  EXPECT_EQ(a.documents, b.documents);
  ASSERT_EQ(a.ground_truth.size(), b.ground_truth.size());
}

TEST_F(GeneratorTest, SeedChangesOutput) {
  DatasetProfile p2 = SmallProfile();
  p2.seed += 1;
  const auto a = GenerateDataset(SmallProfile());
  const auto b = GenerateDataset(p2);
  EXPECT_NE(a.documents, b.documents);
}

TEST_F(GeneratorTest, CountsMatchProfile) {
  const auto ds = GenerateDataset(SmallProfile());
  EXPECT_EQ(ds.num_original_entities, 150u);
  EXPECT_GE(ds.entity_texts.size(), 150u);  // + confusables
  EXPECT_EQ(ds.documents.size(), 4u);
  EXPECT_EQ(ds.ground_truth.size(), 4u * SmallProfile().mentions_per_doc);
}

TEST_F(GeneratorTest, GroundTruthSpansMatchTokenization) {
  const auto ds = GenerateDataset(SmallProfile());
  Tokenizer tokenizer;
  std::vector<std::vector<std::string>> docs;
  for (const auto& d : ds.documents) {
    docs.push_back(tokenizer.TokenizeToStrings(d));
  }
  for (const GroundTruthPair& gt : ds.ground_truth) {
    ASSERT_LT(gt.doc, docs.size());
    ASSERT_LE(gt.token_begin + gt.token_len, docs[gt.doc].size());
    ASSERT_LT(gt.entity, ds.num_original_entities);
    // Exact mentions must literally reproduce the entity tokens.
    if (gt.kind == MentionKind::kExact) {
      const auto entity_toks =
          tokenizer.TokenizeToStrings(ds.entity_texts[gt.entity]);
      ASSERT_EQ(entity_toks.size(), gt.token_len);
      for (size_t i = 0; i < entity_toks.size(); ++i) {
        EXPECT_EQ(docs[gt.doc][gt.token_begin + i], entity_toks[i]);
      }
    }
  }
}

TEST_F(GeneratorTest, MentionKindsAreMixed) {
  DatasetProfile p = SmallProfile();
  p.num_documents = 30;
  const auto ds = GenerateDataset(p);
  std::set<MentionKind> kinds;
  for (const auto& gt : ds.ground_truth) kinds.insert(gt.kind);
  EXPECT_GE(kinds.size(), 2u);  // at least exact + synonym at these rates
}

TEST_F(GeneratorTest, RuleLinesParse) {
  const auto ds = GenerateDataset(SmallProfile());
  Tokenizer tokenizer;
  TokenDictionary dict;
  RuleSet rules;
  for (const auto& line : ds.rule_lines) {
    EXPECT_TRUE(rules.AddFromText(line, tokenizer, dict).ok()) << line;
  }
  EXPECT_EQ(rules.size(), ds.rule_lines.size());
}

TEST_F(GeneratorTest, StatsReflectProfileShape) {
  const auto ds = GenerateDataset(SmallProfile());
  const DatasetStats st = ComputeDatasetStats(ds, /*entity_sample=*/100);
  EXPECT_EQ(st.num_docs, ds.documents.size());
  EXPECT_EQ(st.num_entities, ds.entity_texts.size());
  // avg |e| within the profile's [min, max] band.
  EXPECT_GE(st.avg_entity_tokens, 1.5);
  EXPECT_LE(st.avg_entity_tokens, 4.5);
  // Documents carry the background plus planted mentions.
  EXPECT_GT(st.avg_doc_tokens, 100.0);
}

TEST(ProfileTest, PresetsCarryPaperShape) {
  EXPECT_EQ(PubMedLikeProfile().doc_len, 188u);
  EXPECT_EQ(DBWorldLikeProfile().doc_len, 796u);
  EXPECT_EQ(USJobLikeProfile().doc_len, 322u);
  EXPECT_GT(USJobLikeProfile().entity_len_min,
            PubMedLikeProfile().entity_len_min);
}

TEST(ProfileTest, WithScaleScalesCounts) {
  const DatasetProfile base = PubMedLikeProfile();
  const DatasetProfile doubled = WithScale(base, 2.0);
  EXPECT_EQ(doubled.num_entities, base.num_entities * 2);
  EXPECT_EQ(doubled.num_documents, base.num_documents * 2);
  const DatasetProfile tiny = WithScale(base, 0.01);
  EXPECT_GE(tiny.num_entities, 1u);
}

}  // namespace
}  // namespace aeetes
