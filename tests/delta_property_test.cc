// Cross-path equivalence property (the DESIGN.md §15 contract): an engine
// serving frozen+delta must produce results bit-identical — same entity
// text, same span, same exact double score — to an engine rebuilt offline
// over the final logical entity set, for every filtering strategy. A
// compacted image packed from the same overlay must match the rebuild
// too. Randomized over entity sets, removals, upserts (including
// out-of-vocabulary tokens, re-upserts of tombstoned entities, and
// removals of upserted entities) and documents with planted mentions.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/core/aeetes.h"
#include "src/core/delta_layer.h"
#include "src/core/engine_image.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

struct Hit {
  std::string entity;
  uint32_t begin = 0;
  uint32_t len = 0;
  double score = 0.0;

  bool operator==(const Hit& o) const {
    return entity == o.entity && begin == o.begin && len == o.len &&
           score == o.score;  // exact doubles: both paths share arithmetic
  }
  bool operator<(const Hit& o) const {
    if (begin != o.begin) return begin < o.begin;
    if (len != o.len) return len < o.len;
    if (entity != o.entity) return entity < o.entity;
    return score < o.score;
  }
};

std::ostream& operator<<(std::ostream& os, const Hit& h) {
  return os << "{'" << h.entity << "' @" << h.begin << "+" << h.len << " s="
            << h.score << "}";
}

std::vector<Hit> HitsOf(Aeetes& engine, const std::string& text, double tau,
                        FilterStrategy strategy) {
  const Document doc = engine.EncodeDocument(text);
  auto result = engine.ExtractWithStrategy(doc, tau, strategy);
  EXPECT_TRUE(result.ok()) << result.status();
  std::vector<Hit> hits;
  if (!result.ok()) return hits;
  for (const Match& m : result->matches) {
    hits.push_back(Hit{engine.EntityText(m.entity), m.token_begin,
                       m.token_len, m.score});
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

constexpr FilterStrategy kStrategies[] = {
    FilterStrategy::kSimple, FilterStrategy::kSkip, FilterStrategy::kDynamic,
    FilterStrategy::kLazy};
constexpr double kTaus[] = {0.5, 0.75, 0.9, 1.0};

/// One randomized scenario: base dictionary, mutation script, documents.
struct Scenario {
  std::vector<std::string> base;      // distinct entity texts
  std::vector<std::string> rules;     // fixed for the scenario (see note)
  std::vector<std::string> removed;   // applied in script order with...
  std::vector<std::string> upserted;  // ...interleaving chosen by the test
  std::vector<std::string> docs;
  std::vector<std::string> final_set;  // what a rebuild should index
};

Scenario MakeScenario(uint64_t seed) {
  std::mt19937_64 rng(seed);
  const size_t vocab = 14;
  auto word = [](size_t i) { return testutil::NumberedName("w", i); };
  auto novel = [](size_t i) { return testutil::NumberedName("n", i); };
  auto rand_entity = [&](bool allow_novel) {
    const size_t len = 1 + rng() % 4;
    std::string text;
    for (size_t j = 0; j < len; ++j) {
      if (j > 0) text += ' ';
      if (allow_novel && rng() % 3 == 0) {
        text += novel(rng() % 6);
      } else {
        text += word(rng() % vocab);
      }
    }
    return text;
  };

  Scenario s;
  std::set<std::string> seen;
  while (s.base.size() < 10) {
    std::string e = rand_entity(/*allow_novel=*/false);
    if (seen.insert(e).second) s.base.push_back(std::move(e));
  }
  // Distinct single-token lhs per rule keeps the rule set well-formed; the
  // rule set must be identical on both paths (delta rules apply to delta
  // entities only — the rebuild applies them to everything — so rule
  // mutations are out of scope for this equivalence).
  for (size_t r = 0; r < 4; ++r) {
    std::string line = word(r);
    line += " <=> ";
    line += word(vocab - 1 - r);
    if (rng() % 2 == 0) {
      line += ' ';
      line += word(4 + rng() % (vocab - 4));
    }
    s.rules.push_back(std::move(line));
  }

  // Script: remove ~3 base entities, upsert ~4 new ones (novel tokens
  // allowed), re-upsert one removed base entity, remove one upsert.
  for (size_t i = 0; i < 3; ++i) {
    s.removed.push_back(s.base[rng() % s.base.size()]);
  }
  while (s.upserted.size() < 4) {
    std::string e = rand_entity(/*allow_novel=*/true);
    if (seen.insert(e).second) s.upserted.push_back(std::move(e));
  }

  // Documents plant live, removed, and upserted surfaces among noise.
  for (size_t d = 0; d < 3; ++d) {
    std::string text;
    const size_t len = 24 + rng() % 16;
    for (size_t i = 0; i < len; ++i) {
      if (!text.empty()) text += ' ';
      const size_t roll = rng() % 6;
      if (roll == 0) {
        text += s.base[rng() % s.base.size()];
      } else if (roll == 1) {
        text += s.upserted[rng() % s.upserted.size()];
      } else if (roll == 2 && d > 0) {
        text += novel(rng() % 6);
      } else {
        text += word(rng() % vocab);
      }
    }
    s.docs.push_back(std::move(text));
  }
  return s;
}

/// Applies the script to a live engine (frozen base + overlay) and fills
/// scenario.final_set with what an offline rebuild should contain.
void ApplyScript(Scenario& s, DeltaLayer& delta) {
  std::set<std::string> base_keys(s.base.begin(), s.base.end());
  std::set<std::string> live(s.base.begin(), s.base.end());
  std::vector<std::string> delta_order;

  auto upsert = [&](const std::string& text) {
    ASSERT_TRUE(delta.UpsertEntities({text}).ok());
    if (live.insert(text).second && base_keys.count(text) == 0) {
      delta_order.push_back(text);
    }
  };
  auto remove = [&](const std::string& text) {
    ASSERT_TRUE(delta.RemoveEntities({text}).ok());
    live.erase(text);
  };

  for (const std::string& text : s.removed) remove(text);
  for (const std::string& text : s.upserted) upsert(text);
  // Re-upsert a tombstoned base entity (un-tombstone path) and drop one
  // fresh upsert again (delta tombstone path).
  upsert(s.removed.front());
  remove(s.upserted.back());

  for (const std::string& e : s.base) {
    if (live.count(e) != 0) s.final_set.push_back(e);
  }
  for (const std::string& e : delta_order) {
    if (live.count(e) != 0) s.final_set.push_back(e);
  }
}

class DeltaEquivalenceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DeltaEquivalenceTest, FrozenPlusDeltaMatchesFullRebuildExactly) {
  Scenario s = MakeScenario(GetParam());

  auto live_or = Aeetes::BuildFromText(s.base, s.rules);
  ASSERT_TRUE(live_or.ok()) << live_or.status();
  std::unique_ptr<Aeetes> live = std::move(*live_or);
  DeltaLayer::Options layer_options;
  layer_options.derivation = live->options().derivation;
  layer_options.tokenizer = live->options().tokenizer;
  auto delta_or = DeltaLayer::Create(live->derived_dictionary(), s.rules,
                                     layer_options);
  ASSERT_TRUE(delta_or.ok()) << delta_or.status();
  live->AttachDelta(*delta_or);
  ApplyScript(s, **delta_or);
  ASSERT_FALSE(s.final_set.empty());

  auto rebuilt_or = Aeetes::BuildFromText(s.final_set, s.rules);
  ASSERT_TRUE(rebuilt_or.ok()) << rebuilt_or.status();
  std::unique_ptr<Aeetes> rebuilt = std::move(*rebuilt_or);

  for (size_t d = 0; d < s.docs.size(); ++d) {
    for (const FilterStrategy strategy : kStrategies) {
      for (const double tau : kTaus) {
        EXPECT_EQ(HitsOf(*live, s.docs[d], tau, strategy),
                  HitsOf(*rebuilt, s.docs[d], tau, strategy))
            << "doc " << d << " strategy " << FilterStrategyName(strategy)
            << " tau " << tau;
      }
    }
  }
}

TEST_P(DeltaEquivalenceTest, CompactedImageMatchesFullRebuildExactly) {
  Scenario s = MakeScenario(GetParam());

  auto live_or = Aeetes::BuildFromText(s.base, s.rules);
  ASSERT_TRUE(live_or.ok()) << live_or.status();
  std::unique_ptr<Aeetes> live = std::move(*live_or);
  DeltaLayer::Options layer_options;
  layer_options.derivation = live->options().derivation;
  layer_options.tokenizer = live->options().tokenizer;
  auto delta_or = DeltaLayer::Create(live->derived_dictionary(), s.rules,
                                     layer_options);
  ASSERT_TRUE(delta_or.ok()) << delta_or.status();
  live->AttachDelta(*delta_or);
  ApplyScript(s, **delta_or);

  auto parts = BuildCompactedParts(live->derived_dictionary(),
                                   *(*delta_or)->snapshot());
  ASSERT_TRUE(parts.ok()) << parts.status();
  auto image = EngineImage::Pack(std::move(*parts));
  ASSERT_TRUE(image.ok()) << image.status();
  auto compacted_or = Aeetes::FromImage(std::move(*image), live->options());
  ASSERT_TRUE(compacted_or.ok()) << compacted_or.status();
  std::unique_ptr<Aeetes> compacted = std::move(*compacted_or);

  auto rebuilt_or = Aeetes::BuildFromText(s.final_set, s.rules);
  ASSERT_TRUE(rebuilt_or.ok()) << rebuilt_or.status();
  std::unique_ptr<Aeetes> rebuilt = std::move(*rebuilt_or);

  for (size_t d = 0; d < s.docs.size(); ++d) {
    for (const FilterStrategy strategy : kStrategies) {
      for (const double tau : kTaus) {
        EXPECT_EQ(HitsOf(*compacted, s.docs[d], tau, strategy),
                  HitsOf(*rebuilt, s.docs[d], tau, strategy))
            << "doc " << d << " strategy " << FilterStrategyName(strategy)
            << " tau " << tau;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaEquivalenceTest,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace aeetes
