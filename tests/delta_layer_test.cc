// Directed tests for the mutable delta overlay (DESIGN.md §15): upserts
// become extractable immediately, removals tombstone frozen origins,
// re-upserts un-tombstone, rules apply to delta entities, effective
// entity-size bounds track the live set, and compaction packs an engine
// whose results match the overlay view. The randomized cross-path
// equivalence suite lives in delta_property_test.cc.
#include "src/core/delta_layer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/core/aeetes.h"
#include "src/core/engine_image.h"

namespace aeetes {
namespace {

/// One extraction hit, keyed portably across engines whose EntityIds
/// differ (frozen+delta vs rebuilt vs compacted numberings).
struct Hit {
  std::string entity;
  uint32_t begin = 0;
  uint32_t len = 0;
  double score = 0.0;

  bool operator==(const Hit& o) const {
    return entity == o.entity && begin == o.begin && len == o.len &&
           score == o.score;  // exact: both sides compute identical doubles
  }
  bool operator<(const Hit& o) const {
    if (begin != o.begin) return begin < o.begin;
    if (len != o.len) return len < o.len;
    if (entity != o.entity) return entity < o.entity;
    return score < o.score;
  }
};

std::ostream& operator<<(std::ostream& os, const Hit& h) {
  return os << "{'" << h.entity << "' @" << h.begin << "+" << h.len << " s="
            << h.score << "}";
}

std::vector<Hit> HitsOf(Aeetes& engine, const std::string& text, double tau,
                        FilterStrategy strategy = FilterStrategy::kLazy) {
  const Document doc = engine.EncodeDocument(text);
  auto result = engine.ExtractWithStrategy(doc, tau, strategy);
  EXPECT_TRUE(result.ok()) << result.status();
  std::vector<Hit> hits;
  if (!result.ok()) return hits;
  for (const Match& m : result->matches) {
    hits.push_back(Hit{engine.EntityText(m.entity), m.token_begin,
                       m.token_len, m.score});
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

std::unique_ptr<Aeetes> BuildEngine(const std::vector<std::string>& entities,
                                    const std::vector<std::string>& rules) {
  auto built = Aeetes::BuildFromText(entities, rules);
  EXPECT_TRUE(built.ok()) << built.status();
  return std::move(*built);
}

std::shared_ptr<DeltaLayer> Attach(Aeetes& engine,
                                   std::vector<std::string> rule_lines) {
  DeltaLayer::Options options;
  options.derivation = engine.options().derivation;
  options.tokenizer = engine.options().tokenizer;
  auto layer = DeltaLayer::Create(engine.derived_dictionary(),
                                  std::move(rule_lines), options);
  EXPECT_TRUE(layer.ok()) << layer.status();
  engine.AttachDelta(*layer);
  return *layer;
}

class DeltaLayerTest : public testing::Test {
 protected:
  void SetUp() override {
    entities_ = {"purdue university", "uq au", "acme corp"};
    rules_ = {"uq <=> university of queensland", "au <=> australia"};
    engine_ = BuildEngine(entities_, rules_);
    delta_ = Attach(*engine_, rules_);
  }

  std::vector<std::string> entities_;
  std::vector<std::string> rules_;
  std::unique_ptr<Aeetes> engine_;
  std::shared_ptr<DeltaLayer> delta_;
};

TEST_F(DeltaLayerTest, EmptyOverlayIsPassthrough) {
  EXPECT_TRUE(delta_->snapshot()->passthrough());
  const auto hits = HitsOf(*engine_, "visiting acme corp today", 0.9);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].entity, "acme corp");
}

TEST_F(DeltaLayerTest, UpsertIsImmediatelyExtractable) {
  const std::string doc = "met the globex industries team at acme corp";
  EXPECT_TRUE(HitsOf(*engine_, doc, 0.9).size() == 1u);  // frozen hit only

  auto upserted = delta_->UpsertEntities({"globex industries"});
  ASSERT_TRUE(upserted.ok()) << upserted.status();
  EXPECT_EQ(*upserted, 1u);
  EXPECT_EQ(delta_->live_entities(), 1u);

  const auto hits = HitsOf(*engine_, doc, 0.9);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].entity, "globex industries");
  EXPECT_EQ(hits[0].len, 2u);
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
  EXPECT_EQ(hits[1].entity, "acme corp");
}

TEST_F(DeltaLayerTest, DeltaEntityIdsAreDisjointFromFrozenAndResolve) {
  ASSERT_TRUE(delta_->UpsertEntities({"globex industries"}).ok());
  const Document doc = engine_->EncodeDocument("globex industries");
  auto result = engine_->Extract(doc, 0.9);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  const EntityId id = result->matches[0].entity;
  EXPECT_GE(id, engine_->derived_dictionary().num_origins());
  EXPECT_TRUE(delta_->OwnsEntity(id));
  EXPECT_EQ(engine_->EntityText(id), "globex industries");
}

TEST_F(DeltaLayerTest, RemoveTombstonesFrozenEntity) {
  const std::string doc = "acme corp sued purdue university";
  EXPECT_EQ(HitsOf(*engine_, doc, 0.9).size(), 2u);

  auto removed = delta_->RemoveEntities({"acme corp"});
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  EXPECT_EQ(delta_->tombstone_count(), 1u);

  const auto hits = HitsOf(*engine_, doc, 0.9);
  ASSERT_EQ(hits.size(), 1u);  // the tombstoned origin no longer matches
  EXPECT_EQ(hits[0].entity, "purdue university");
}

TEST_F(DeltaLayerTest, UpsertUnTombstonesFrozenEntity) {
  ASSERT_TRUE(delta_->RemoveEntities({"uq au"}).ok());
  EXPECT_TRUE(HitsOf(*engine_, "uq au", 0.9).empty());

  auto upserted = delta_->UpsertEntities({"uq au"});
  ASSERT_TRUE(upserted.ok());
  EXPECT_EQ(*upserted, 1u);
  EXPECT_EQ(delta_->tombstone_count(), 0u);
  EXPECT_EQ(delta_->live_entities(), 0u);  // frozen origin, not a delta slot

  // The frozen expansion (built under the image's rules) is back in full:
  // the synonym-rewritten surface still matches.
  const auto hits = HitsOf(*engine_, "university of queensland australia",
                           0.9);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].entity, "uq au");
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
}

TEST_F(DeltaLayerTest, UpsertOfLiveFrozenEntityIsNoOp) {
  auto upserted = delta_->UpsertEntities({"acme corp"});
  ASSERT_TRUE(upserted.ok());
  EXPECT_EQ(*upserted, 0u);
  EXPECT_TRUE(delta_->snapshot()->passthrough());
}

TEST_F(DeltaLayerTest, RemoveUnknownEntityIsIgnored) {
  auto removed = delta_->RemoveEntities({"never seen"});
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0u);
}

TEST_F(DeltaLayerTest, RemovedDeltaEntityStopsMatchingButTextResolves) {
  ASSERT_TRUE(delta_->UpsertEntities({"globex industries"}).ok());
  const Document doc = engine_->EncodeDocument("globex industries");
  auto before = engine_->Extract(doc, 0.9);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->matches.size(), 1u);
  const EntityId id = before->matches[0].entity;

  ASSERT_TRUE(delta_->RemoveEntities({"globex industries"}).ok());
  auto after = engine_->Extract(doc, 0.9);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->matches.empty());
  // Ids are never reused, so a racing response can still name the entity.
  EXPECT_EQ(delta_->EntityText(id), "globex industries");
}

TEST_F(DeltaLayerTest, ReUpsertAfterRemoveKeepsEntityId) {
  ASSERT_TRUE(delta_->UpsertEntities({"globex industries"}).ok());
  const Document doc = engine_->EncodeDocument("globex industries");
  auto first = engine_->Extract(doc, 0.9);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->matches.size(), 1u);
  const EntityId id = first->matches[0].entity;

  ASSERT_TRUE(delta_->RemoveEntities({"globex industries"}).ok());
  ASSERT_TRUE(delta_->UpsertEntities({"globex industries"}).ok());
  auto second = engine_->Extract(doc, 0.9);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->matches.size(), 1u);
  EXPECT_EQ(second->matches[0].entity, id);
}

TEST_F(DeltaLayerTest, DeltaEntityExpandsUnderLayerRules) {
  // "uq" only appears in the delta entity via the layer's rules.
  ASSERT_TRUE(delta_->UpsertEntities({"uq press"}).ok());
  const auto hits =
      HitsOf(*engine_, "the university of queensland press released it", 0.9);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].entity, "uq press");
  EXPECT_EQ(hits[0].len, 4u);  // "university of queensland press"
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
}

TEST_F(DeltaLayerTest, UpsertRulesReExpandsDeltaEntities) {
  ASSERT_TRUE(delta_->UpsertEntities({"tx hq"}).ok());
  EXPECT_TRUE(HitsOf(*engine_, "the texas headquarters", 0.9).empty());

  auto added = delta_->UpsertRules(
      {"tx <=> texas", "hq <=> headquarters"});
  ASSERT_TRUE(added.ok());
  const auto hits = HitsOf(*engine_, "the texas headquarters", 0.9);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].entity, "tx hq");
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
}

TEST_F(DeltaLayerTest, OutOfVocabularyDeltaTokensMatch) {
  // Neither token exists in the frozen dictionary; the document interns
  // them at encode time and the overlay bridges by text.
  ASSERT_TRUE(delta_->UpsertEntities({"zyzzyva xylophone"}).ok());
  const auto hits = HitsOf(*engine_, "a zyzzyva xylophone appeared", 0.9);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].entity, "zyzzyva xylophone");
}

TEST_F(DeltaLayerTest, DeltaEntityLongerThanFrozenMaxIsFound) {
  // The frozen dictionary's widest derived set is smaller than this
  // 5-token upsert; without the effective-bounds override the window
  // enumeration would never produce a 5-token window.
  const std::string text = "one two three four five";
  ASSERT_TRUE(delta_->UpsertEntities({text}).ok());
  const auto snap = delta_->snapshot();
  EXPECT_EQ(snap->entity_size_max(), 5u);
  for (FilterStrategy s :
       {FilterStrategy::kSimple, FilterStrategy::kSkip,
        FilterStrategy::kDynamic, FilterStrategy::kLazy}) {
    const auto hits = HitsOf(*engine_, "zero one two three four five six",
                             0.95, s);
    ASSERT_EQ(hits.size(), 1u) << FilterStrategyName(s);
    EXPECT_EQ(hits[0].entity, text);
    EXPECT_EQ(hits[0].len, 5u);
  }
}

TEST_F(DeltaLayerTest, RemovingEveryEntityYieldsNoMatches) {
  ASSERT_TRUE(delta_->UpsertEntities({"globex industries"}).ok());
  ASSERT_TRUE(delta_
                  ->RemoveEntities({"purdue university", "uq au", "acme corp",
                                    "globex industries"})
                  .ok());
  EXPECT_FALSE(delta_->snapshot()->has_live_entities());
  EXPECT_TRUE(
      HitsOf(*engine_, "acme corp globex industries purdue university", 0.5)
          .empty());
}

TEST_F(DeltaLayerTest, TombstoningUniqueLargestEntityShrinksBounds) {
  // "purdue university" (2 tokens) and "acme corp" (2) remain after
  // removing "uq au" — whose rule expansion ("university of queensland
  // australia") is the unique widest derived form.
  const size_t before = delta_->snapshot()->entity_size_max();
  ASSERT_TRUE(delta_->RemoveEntities({"uq au"}).ok());
  const auto snap = delta_->snapshot();
  EXPECT_LT(snap->entity_size_max(), before);
  // The survivors still match under the tightened bounds.
  const auto hits = HitsOf(*engine_, "acme corp and purdue university", 0.9);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(DeltaLayerTest, MutationLogReplayReproducesState) {
  ASSERT_TRUE(delta_->UpsertEntities({"globex industries"}).ok());
  ASSERT_TRUE(delta_->RemoveEntities({"acme corp"}).ok());
  ASSERT_TRUE(delta_->UpsertRules({"gx <=> globex"}).ok());
  ASSERT_TRUE(delta_->UpsertEntities({"gx tower"}).ok());

  auto replayed = DeltaLayer::Create(engine_->derived_dictionary(), rules_,
                                     DeltaLayer::Options{
                                         engine_->options().derivation,
                                         engine_->options().tokenizer});
  ASSERT_TRUE(replayed.ok());
  ASSERT_TRUE((*replayed)->Replay(delta_->MutationsSince(0)).ok());

  EXPECT_EQ((*replayed)->live_entities(), delta_->live_entities());
  EXPECT_EQ((*replayed)->tombstone_count(), delta_->tombstone_count());
  EXPECT_EQ((*replayed)->rule_lines(), delta_->rule_lines());
  EXPECT_EQ((*replayed)->generation(), delta_->generation());

  // Swapping in the replayed layer yields identical extractions.
  const std::string doc = "globex tower by acme corp near purdue university";
  const auto want = HitsOf(*engine_, doc, 0.8);
  engine_->AttachDelta(*replayed);
  EXPECT_EQ(HitsOf(*engine_, doc, 0.8), want);
}

TEST_F(DeltaLayerTest, MutationsSinceReturnsOnlyTheTail) {
  ASSERT_TRUE(delta_->UpsertEntities({"globex industries"}).ok());
  const uint64_t mark = delta_->generation();
  ASSERT_TRUE(delta_->RemoveEntities({"acme corp"}).ok());
  const auto tail = delta_->MutationsSince(mark);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].kind, DeltaMutation::Kind::kRemove);
  EXPECT_EQ(tail[0].text, "acme corp");
}

TEST_F(DeltaLayerTest, CompactedEngineMatchesOverlayView) {
  ASSERT_TRUE(delta_->UpsertEntities({"globex industries", "uq press"}).ok());
  ASSERT_TRUE(delta_->RemoveEntities({"acme corp"}).ok());

  auto parts = BuildCompactedParts(engine_->derived_dictionary(),
                                   *delta_->snapshot());
  ASSERT_TRUE(parts.ok()) << parts.status();
  auto image = EngineImage::Pack(std::move(*parts));
  ASSERT_TRUE(image.ok()) << image.status();
  auto compacted = Aeetes::FromImage(std::move(*image), engine_->options());
  ASSERT_TRUE(compacted.ok()) << compacted.status();

  const std::string doc =
      "globex industries acquired acme corp and the university of "
      "queensland press with purdue university";
  for (double tau : {0.6, 0.8, 1.0}) {
    EXPECT_EQ(HitsOf(**compacted, doc, tau), HitsOf(*engine_, doc, tau))
        << "tau=" << tau;
  }
}

TEST_F(DeltaLayerTest, CompactingEverythingAwayFails) {
  ASSERT_TRUE(
      delta_->RemoveEntities({"purdue university", "uq au", "acme corp"})
          .ok());
  auto parts = BuildCompactedParts(engine_->derived_dictionary(),
                                   *delta_->snapshot());
  EXPECT_FALSE(parts.ok());
}

TEST_F(DeltaLayerTest, EmptyEntityTextRejected) {
  EXPECT_FALSE(delta_->UpsertEntities({"   "}).ok());
}

}  // namespace
}  // namespace aeetes
