#include <gtest/gtest.h>

#include <random>
#include <set>
#include <tuple>

#include "src/baseline/brute_force.h"
#include "src/core/aeetes.h"
#include "src/core/candidate_generator.h"
#include "src/core/verifier.h"
#include "src/index/clustered_index.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::MakeRandomWorld;
using testutil::Sorted;

constexpr FilterStrategy kAllStrategies[] = {
    FilterStrategy::kSimple, FilterStrategy::kSkip, FilterStrategy::kDynamic,
    FilterStrategy::kLazy};

std::set<std::tuple<uint32_t, uint32_t, EntityId>> CandidateSet(
    const std::vector<Candidate>& cs) {
  std::set<std::tuple<uint32_t, uint32_t, EntityId>> out;
  for (const Candidate& c : cs) out.emplace(c.pos, c.len, c.origin);
  return out;
}

TEST(PositionalFilterTest, NeverLosesATrueMatch) {
  std::mt19937_64 rng(211);
  CandidateGenOptions with;
  with.positional_filter = true;
  for (int iter = 0; iter < 25; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    for (double tau : {0.7, 0.8, 0.9}) {
      const auto matches = BruteForceExtract(doc, *world.dd, tau);
      for (FilterStrategy s : kAllStrategies) {
        const auto got = GenerateCandidates(s, doc, *world.dd, *index, tau,
                                            Metric::kJaccard, with);
        const auto cset = CandidateSet(got.candidates);
        for (const Match& m : matches) {
          EXPECT_TRUE(cset.count(
              std::make_tuple(m.token_begin, m.token_len, m.entity)))
              << FilterStrategyName(s) << " tau=" << tau
              << " lost match at pos=" << m.token_begin;
        }
      }
    }
  }
}

TEST(PositionalFilterTest, CandidatesAreASubsetOfUnfiltered) {
  std::mt19937_64 rng(223);
  CandidateGenOptions with;
  with.positional_filter = true;
  uint64_t pruned_total = 0;
  for (int iter = 0; iter < 15; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    for (FilterStrategy s : kAllStrategies) {
      const auto without =
          GenerateCandidates(s, doc, *world.dd, *index, 0.8);
      const auto filtered = GenerateCandidates(s, doc, *world.dd, *index,
                                               0.8, Metric::kJaccard, with);
      const auto base = CandidateSet(without.candidates);
      for (const Candidate& c : filtered.candidates) {
        EXPECT_TRUE(base.count(std::make_tuple(c.pos, c.len, c.origin)))
            << FilterStrategyName(s);
      }
      EXPECT_LE(filtered.candidates.size(), without.candidates.size());
      pruned_total += filtered.stats.positional_pruned;
    }
  }
  EXPECT_GT(pruned_total, 0u) << "filter never fired on random data";
}

TEST(PositionalFilterTest, AllStrategiesAgreeWithFilterOn) {
  std::mt19937_64 rng(227);
  CandidateGenOptions with;
  with.positional_filter = true;
  for (int iter = 0; iter < 15; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    // The per-strategy candidate sets may legally differ slightly under
    // the positional filter (Skip admits via any token, Dynamic/Lazy via
    // the best witness position), but the *verified matches* must agree.
    const double tau = 0.8;
    std::vector<Match> reference;
    for (size_t i = 0; i < 4; ++i) {
      auto gen = GenerateCandidates(kAllStrategies[i], doc, *world.dd,
                                    *index, tau, Metric::kJaccard, with);
      auto matches = Sorted(VerifyCandidates(std::move(gen.candidates), doc,
                                             *world.dd, tau, {}));
      if (i == 0) {
        reference = std::move(matches);
      } else {
        EXPECT_EQ(matches, reference)
            << FilterStrategyName(kAllStrategies[i]);
      }
    }
  }
}

TEST(PositionalFilterTest, EndToEndViaAeetesOptions) {
  AeetesOptions options;
  options.positional_filter = true;
  auto built = Aeetes::BuildFromText(
      {"new york city", "san francisco"},
      {"big apple <=> new york", "sf <=> san francisco"}, options);
  ASSERT_TRUE(built.ok());
  Document doc = (*built)->EncodeDocument(
      "from sf to the big apple city in one flight");
  auto result = (*built)->Extract(doc, 0.8);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 2u);
}

}  // namespace
}  // namespace aeetes
