// Deterministic-clock tests for the per-tenant token bucket. Time is
// caller-supplied microseconds, so every refill boundary here is exact.
#include <gtest/gtest.h>

#include "src/server/rate_limiter.h"

namespace aeetes {
namespace server {
namespace {

constexpr int64_t kSecond = 1'000'000;

RateLimiter::Options Limits(double rate, double burst) {
  RateLimiter::Options options;
  options.tokens_per_second = rate;
  options.burst = burst;
  return options;
}

TEST(RateLimiterTest, DisabledAdmitsEverything) {
  RateLimiter limiter(Limits(/*rate=*/0.0, /*burst=*/1.0));
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(limiter.Admit("anyone", /*now_us=*/0).ok());
  }
  EXPECT_EQ(limiter.tenant_count(), 0u);  // no buckets materialized
}

TEST(RateLimiterTest, BurstThenReject) {
  RateLimiter limiter(Limits(/*rate=*/1.0, /*burst=*/3.0));
  ASSERT_TRUE(limiter.enabled());
  EXPECT_TRUE(limiter.Admit("t", 0).ok());
  EXPECT_TRUE(limiter.Admit("t", 0).ok());
  EXPECT_TRUE(limiter.Admit("t", 0).ok());
  const Status rejected = limiter.Admit("t", 0);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
}

TEST(RateLimiterTest, RefillsAtConfiguredRate) {
  RateLimiter limiter(Limits(/*rate=*/2.0, /*burst=*/2.0));
  EXPECT_TRUE(limiter.Admit("t", 0).ok());
  EXPECT_TRUE(limiter.Admit("t", 0).ok());
  EXPECT_FALSE(limiter.Admit("t", 0).ok());
  // 2 tokens/s -> one full token after 500ms.
  EXPECT_FALSE(limiter.Admit("t", kSecond / 4).ok());
  EXPECT_TRUE(limiter.Admit("t", kSecond / 2).ok());
  EXPECT_FALSE(limiter.Admit("t", kSecond / 2).ok());
}

TEST(RateLimiterTest, RefillCapsAtBurst) {
  RateLimiter limiter(Limits(/*rate=*/10.0, /*burst=*/2.0));
  EXPECT_TRUE(limiter.Admit("t", 0).ok());
  EXPECT_TRUE(limiter.Admit("t", 0).ok());
  // A long idle period must not bank more than `burst` tokens.
  const int64_t later = 100 * kSecond;
  EXPECT_DOUBLE_EQ(limiter.TokensAvailable("t", later), 2.0);
  EXPECT_TRUE(limiter.Admit("t", later).ok());
  EXPECT_TRUE(limiter.Admit("t", later).ok());
  EXPECT_FALSE(limiter.Admit("t", later).ok());
}

TEST(RateLimiterTest, TenantsAreIsolated) {
  RateLimiter limiter(Limits(/*rate=*/1.0, /*burst=*/1.0));
  EXPECT_TRUE(limiter.Admit("noisy", 0).ok());
  // The noisy tenant hammers an empty bucket...
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(limiter.Admit("noisy", 0).ok());
  }
  // ...and the quiet tenant is untouched.
  EXPECT_TRUE(limiter.Admit("quiet", 0).ok());
  EXPECT_EQ(limiter.tenant_count(), 2u);
}

TEST(RateLimiterTest, ClockGoingBackwardsDoesNotMintTokens) {
  RateLimiter limiter(Limits(/*rate=*/1.0, /*burst=*/1.0));
  EXPECT_TRUE(limiter.Admit("t", 10 * kSecond).ok());
  // An earlier timestamp (scheduler skew, test error) must not refill.
  EXPECT_FALSE(limiter.Admit("t", 5 * kSecond).ok());
  EXPECT_DOUBLE_EQ(limiter.TokensAvailable("t", 5 * kSecond), 0.0);
}

TEST(RateLimiterTest, TenantTableCapRejectsNewTenantsOnly) {
  RateLimiter::Options options = Limits(/*rate=*/1.0, /*burst=*/5.0);
  options.max_tenants = 2;
  RateLimiter limiter(options);
  EXPECT_TRUE(limiter.Admit("a", 0).ok());
  EXPECT_TRUE(limiter.Admit("b", 0).ok());
  // Table full: a third tenant is shed, existing tenants keep working.
  EXPECT_EQ(limiter.Admit("c", 0).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(limiter.Admit("a", 0).ok());
  EXPECT_EQ(limiter.tenant_count(), 2u);
}

// Regression: Refill used to keep a stale future `last_refill_us` after
// the clock stepped backwards, freezing refills until the clock re-passed
// the old timestamp — here, no tokens until t=11s although the tenant
// waited a full refill period after the regression.
TEST(RateLimiterTest, BackwardsClockStepDoesNotFreezeRefill) {
  RateLimiter limiter(Limits(/*rate=*/1.0, /*burst=*/1.0));
  EXPECT_TRUE(limiter.Admit("t", 10 * kSecond).ok());   // bucket empty
  EXPECT_FALSE(limiter.Admit("t", 10 * kSecond).ok());
  EXPECT_FALSE(limiter.Admit("t", 5 * kSecond).ok());   // clock regressed
  // One refill period after the regressed timestamp must mint one token;
  // the buggy limiter would still be waiting for t > 10s.
  EXPECT_TRUE(limiter.Admit("t", 6 * kSecond).ok());
  EXPECT_FALSE(limiter.Admit("t", 6 * kSecond).ok());
}

// Regression: the tenant table never evicted, so the first `max_tenants`
// ids ever seen permanently locked out tenant N+1 — this test fails on the
// pre-fix limiter at the first "d" Admit below.
TEST(RateLimiterTest, FullTableEvictsLongestIdleRefilledBucket) {
  RateLimiter::Options options = Limits(/*rate=*/1.0, /*burst=*/1.0);
  options.max_tenants = 2;
  RateLimiter limiter(options);
  EXPECT_TRUE(limiter.Admit("a", 0).ok());
  EXPECT_TRUE(limiter.Admit("b", 1).ok());
  // Table full and neither bucket has refilled yet: still sheds.
  EXPECT_EQ(limiter.Admit("c", 2).code(), StatusCode::kResourceExhausted);
  // After both buckets idle back to full, a new tenant takes the
  // longest-idle one ("a") instead of being rejected forever.
  EXPECT_TRUE(limiter.Admit("d", 5 * kSecond).ok());
  EXPECT_EQ(limiter.tenant_count(), 2u);
  // "b" was spared (newer), and is itself refilled and admissible.
  EXPECT_TRUE(limiter.Admit("b", 5 * kSecond).ok());
  // "d" and "b" both drained at t=5s: no refilled victim, so yet another
  // tenant is rejected — the at-the-cap contract is unchanged.
  EXPECT_EQ(limiter.Admit("e", 5 * kSecond).code(),
            StatusCode::kResourceExhausted);
}

TEST(RateLimiterTest, TokensAvailableDoesNotCreateBuckets) {
  RateLimiter limiter(Limits(/*rate=*/1.0, /*burst=*/4.0));
  EXPECT_DOUBLE_EQ(limiter.TokensAvailable("ghost", 0), 4.0);
  EXPECT_EQ(limiter.tenant_count(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace aeetes
