#include "src/datagen/tsv_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/datagen/profile.h"

namespace aeetes {
namespace {

class TsvIoTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("aeetes_tsv_test_" + std::to_string(::getpid()));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(TsvIoTest, RoundTripsDataset) {
  DatasetProfile p = PubMedLikeProfile();
  p.num_entities = 60;
  p.num_documents = 3;
  p.num_rules = 25;
  p.doc_len = 60;
  const SyntheticDataset ds = GenerateDataset(p);

  ASSERT_TRUE(SaveDataset(ds, dir_.string()).ok());
  auto loaded = LoadDataset(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->entity_texts, ds.entity_texts);
  EXPECT_EQ(loaded->rule_lines, ds.rule_lines);
  EXPECT_EQ(loaded->documents, ds.documents);
  EXPECT_EQ(loaded->num_original_entities, ds.num_original_entities);
  ASSERT_EQ(loaded->ground_truth.size(), ds.ground_truth.size());
  for (size_t i = 0; i < ds.ground_truth.size(); ++i) {
    EXPECT_EQ(loaded->ground_truth[i].doc, ds.ground_truth[i].doc);
    EXPECT_EQ(loaded->ground_truth[i].token_begin,
              ds.ground_truth[i].token_begin);
    EXPECT_EQ(loaded->ground_truth[i].token_len,
              ds.ground_truth[i].token_len);
    EXPECT_EQ(loaded->ground_truth[i].entity, ds.ground_truth[i].entity);
    EXPECT_EQ(loaded->ground_truth[i].kind, ds.ground_truth[i].kind);
  }
  EXPECT_EQ(loaded->profile.name, ds.profile.name);
}

TEST_F(TsvIoTest, LoadFromMissingDirectoryFails) {
  auto loaded = LoadDataset((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(TsvIoTest, SaveCreatesDirectory) {
  DatasetProfile p = PubMedLikeProfile();
  p.num_entities = 10;
  p.num_documents = 1;
  p.num_rules = 4;
  p.doc_len = 30;
  const SyntheticDataset ds = GenerateDataset(p);
  const auto nested = dir_ / "a" / "b";
  ASSERT_TRUE(SaveDataset(ds, nested.string()).ok());
  EXPECT_TRUE(std::filesystem::exists(nested / "entities.txt"));
  EXPECT_TRUE(std::filesystem::exists(nested / "ground_truth.tsv"));
}

}  // namespace
}  // namespace aeetes
