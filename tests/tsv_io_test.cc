#include "src/datagen/tsv_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/datagen/profile.h"

namespace aeetes {
namespace {

class TsvIoTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("aeetes_tsv_test_" + std::to_string(::getpid()));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(TsvIoTest, RoundTripsDataset) {
  DatasetProfile p = PubMedLikeProfile();
  p.num_entities = 60;
  p.num_documents = 3;
  p.num_rules = 25;
  p.doc_len = 60;
  const SyntheticDataset ds = GenerateDataset(p);

  ASSERT_TRUE(SaveDataset(ds, dir_.string()).ok());
  auto loaded = LoadDataset(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->entity_texts, ds.entity_texts);
  EXPECT_EQ(loaded->rule_lines, ds.rule_lines);
  EXPECT_EQ(loaded->documents, ds.documents);
  EXPECT_EQ(loaded->num_original_entities, ds.num_original_entities);
  ASSERT_EQ(loaded->ground_truth.size(), ds.ground_truth.size());
  for (size_t i = 0; i < ds.ground_truth.size(); ++i) {
    EXPECT_EQ(loaded->ground_truth[i].doc, ds.ground_truth[i].doc);
    EXPECT_EQ(loaded->ground_truth[i].token_begin,
              ds.ground_truth[i].token_begin);
    EXPECT_EQ(loaded->ground_truth[i].token_len,
              ds.ground_truth[i].token_len);
    EXPECT_EQ(loaded->ground_truth[i].entity, ds.ground_truth[i].entity);
    EXPECT_EQ(loaded->ground_truth[i].kind, ds.ground_truth[i].kind);
  }
  EXPECT_EQ(loaded->profile.name, ds.profile.name);
}

TEST_F(TsvIoTest, LoadFromMissingDirectoryFails) {
  auto loaded = LoadDataset((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(TsvIoTest, SaveCreatesDirectory) {
  DatasetProfile p = PubMedLikeProfile();
  p.num_entities = 10;
  p.num_documents = 1;
  p.num_rules = 4;
  p.doc_len = 30;
  const SyntheticDataset ds = GenerateDataset(p);
  const auto nested = dir_ / "a" / "b";
  ASSERT_TRUE(SaveDataset(ds, nested.string()).ok());
  EXPECT_TRUE(std::filesystem::exists(nested / "entities.txt"));
  EXPECT_TRUE(std::filesystem::exists(nested / "ground_truth.tsv"));
}

// Regression: a non-numeric entity count in meta.txt used to reach
// std::stoul, whose throw a no-exceptions binary turns into
// std::terminate (found by fuzz_tsv; the minimized input is checked in
// at fuzz/corpus/regressions/tsv_meta_stoul_terminate.bin). Hostile file
// content must come back as a Status.
TEST_F(TsvIoTest, HostileMetaEntityCountIsAnErrorNotACrash) {
  std::filesystem::create_directories(dir_);
  for (const char* name :
       {"entities.txt", "rules.txt", "documents.txt", "ground_truth.tsv"}) {
    std::ofstream(dir_ / name) << "";
  }
  std::ofstream(dir_ / "meta.txt") << "profile-name\nNOT_A_NUMBER\n";

  auto loaded = LoadDataset(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);

  // Trailing garbage after valid digits must also be rejected (stoul's
  // old behavior silently accepted "12abc" as 12).
  std::ofstream(dir_ / "meta.txt") << "profile-name\n12abc\n";
  EXPECT_FALSE(LoadDataset(dir_.string()).ok());

  // A plain numeric count still parses.
  std::ofstream(dir_ / "meta.txt") << "profile-name\n7\n";
  auto ok = LoadDataset(dir_.string());
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->num_original_entities, 7u);
}

TEST_F(TsvIoTest, GroundTruthKindOutOfRangeIsRejected) {
  std::filesystem::create_directories(dir_);
  for (const char* name : {"entities.txt", "rules.txt", "documents.txt"}) {
    std::ofstream(dir_ / name) << "";
  }
  std::ofstream(dir_ / "meta.txt") << "p\n0\n";
  std::ofstream(dir_ / "ground_truth.tsv") << "0\t0\t1\t0\t99\n";
  auto loaded = LoadDataset(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace aeetes
