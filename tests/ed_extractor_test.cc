#include "src/chargram/ed_extractor.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <tuple>

#include "src/chargram/qgram.h"
#include "src/sim/edit_distance.h"

namespace aeetes {
namespace {

using EdMatch = EditDistanceExtractor::EdMatch;

std::set<std::tuple<uint32_t, uint32_t, uint32_t>> Keys(
    const std::vector<EdMatch>& ms) {
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> out;
  for (const auto& m : ms) out.emplace(m.char_begin, m.char_len, m.entity);
  return out;
}

/// Naive sliding oracle.
std::set<std::tuple<uint32_t, uint32_t, uint32_t>> Oracle(
    const std::vector<std::string>& entities, std::string_view doc,
    size_t k) {
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> out;
  for (uint32_t e = 0; e < entities.size(); ++e) {
    const size_t m = entities[e].size();
    const size_t lo = m > k ? m - k : 1;
    for (size_t len = lo; len <= m + k && len <= doc.size(); ++len) {
      for (size_t p = 0; p + len <= doc.size(); ++p) {
        if (EditDistance(doc.substr(p, len), entities[e]) <= k) {
          out.emplace(static_cast<uint32_t>(p), static_cast<uint32_t>(len),
                      e);
        }
      }
    }
  }
  return out;
}

TEST(QGramTest, PositionalGrams) {
  const auto grams = PositionalQGrams("abcd", 2);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], (std::pair<std::string, uint32_t>{"ab", 0}));
  EXPECT_EQ(grams[2], (std::pair<std::string, uint32_t>{"cd", 2}));
  EXPECT_TRUE(PositionalQGrams("a", 2).empty());
  EXPECT_TRUE(PositionalQGrams("abc", 0).empty());
}

TEST(QGramTest, LowerBound) {
  // |a|=|b|=10, q=2, k=1: 10-2+1 - 2 = 7.
  EXPECT_EQ(QGramLowerBound(10, 10, 2, 1), 7u);
  EXPECT_EQ(QGramLowerBound(4, 4, 2, 2), 0u);  // degenerate
  EXPECT_EQ(QGramLowerBound(1, 1, 2, 0), 0u);  // shorter than q
}

TEST(EdExtractorTest, RejectsBadInputs) {
  EXPECT_FALSE(EditDistanceExtractor::Build({}).ok());
  EXPECT_FALSE(EditDistanceExtractor::Build({""}).ok());
  EditDistanceExtractor::Options opts;
  opts.q = 0;
  EXPECT_FALSE(EditDistanceExtractor::Build({"abc"}, opts).ok());
}

TEST(EdExtractorTest, ExactAndTypoMatches) {
  auto ex = EditDistanceExtractor::Build({"auckland", "sydney"});
  ASSERT_TRUE(ex.ok());
  const std::string doc = "flights to aukland and sydney today";
  const auto k1 = (*ex)->Extract(doc, 1);
  bool found_typo = false, found_exact = false;
  for (const auto& m : k1) {
    const std::string span = doc.substr(m.char_begin, m.char_len);
    if (m.entity == 0 && span == "aukland" && m.distance == 1) {
      found_typo = true;
    }
    if (m.entity == 1 && span == "sydney" && m.distance == 0) {
      found_exact = true;
    }
  }
  EXPECT_TRUE(found_typo);
  EXPECT_TRUE(found_exact);
}

TEST(EdExtractorTest, ZeroDistanceIsExactSearch) {
  auto ex = EditDistanceExtractor::Build({"abc"});
  ASSERT_TRUE(ex.ok());
  const auto ms = (*ex)->Extract("zabcz abc", 0);
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_EQ(ms[0].char_begin, 1u);
  EXPECT_EQ(ms[1].char_begin, 6u);
  EXPECT_EQ(ms[0].distance, 0u);
}

TEST(EdExtractorTest, ShortEntitiesAreScannedDirectly) {
  auto ex = EditDistanceExtractor::Build({"a"});
  ASSERT_TRUE(ex.ok());
  const auto ms = (*ex)->Extract("bab", 0);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].char_begin, 1u);
}

TEST(EdExtractorTest, EmptyDocument) {
  auto ex = EditDistanceExtractor::Build({"abc"});
  ASSERT_TRUE(ex.ok());
  EXPECT_TRUE((*ex)->Extract("", 1).empty());
}

TEST(EdExtractorPropertyTest, MatchesNaiveOracle) {
  std::mt19937_64 rng(401);
  const std::string alphabet = "abcd";
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<std::string> entities;
    const size_t ne = 1 + rng() % 6;
    for (size_t i = 0; i < ne; ++i) {
      std::string e;
      const size_t len = 1 + rng() % 7;
      for (size_t j = 0; j < len; ++j) e += alphabet[rng() % alphabet.size()];
      entities.push_back(std::move(e));
    }
    std::string doc;
    const size_t n = rng() % 60;
    for (size_t j = 0; j < n; ++j) doc += alphabet[rng() % alphabet.size()];

    auto ex = EditDistanceExtractor::Build(entities);
    ASSERT_TRUE(ex.ok());
    for (size_t k : {0u, 1u, 2u}) {
      EXPECT_EQ(Keys((*ex)->Extract(doc, k)), Oracle(entities, doc, k))
          << "iter=" << iter << " k=" << k << " doc=" << doc;
    }
  }
}

TEST(EdExtractorTest, ReportedDistancesAreExact) {
  auto ex = EditDistanceExtractor::Build({"hello world"});
  ASSERT_TRUE(ex.ok());
  const std::string doc = "say helo world now";
  for (const auto& m : (*ex)->Extract(doc, 2)) {
    EXPECT_EQ(m.distance,
              EditDistance(doc.substr(m.char_begin, m.char_len),
                           (*ex)->entity(m.entity)));
    EXPECT_LE(m.distance, 2u);
  }
}

TEST(EdExtractorTest, StatsReported) {
  auto ex = EditDistanceExtractor::Build({"abcdef"});
  ASSERT_TRUE(ex.ok());
  EditDistanceExtractor::Stats stats;
  (*ex)->Extract("xx abcdef yy", 1, &stats);
  EXPECT_GT(stats.gram_hits, 0u);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GE(stats.candidates, stats.verified);
}

}  // namespace
}  // namespace aeetes
