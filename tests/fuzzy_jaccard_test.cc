#include "src/sim/fuzzy_jaccard.h"

#include <gtest/gtest.h>

namespace aeetes {
namespace {

TEST(FuzzyJaccardTest, ExactSetsReduceToJaccard) {
  FuzzyJaccard fj;
  EXPECT_DOUBLE_EQ(fj.Similarity({"a", "b", "c"}, {"a", "b", "c"}), 1.0);
  EXPECT_DOUBLE_EQ(fj.Similarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(fj.Similarity({"a"}, {"b"}), 0.0);
}

TEST(FuzzyJaccardTest, RecoversTypoTokens) {
  FuzzyJaccard fj;
  // "aukland" ~ "auckland": ed = 1, sim = 1 - 1/8 = 0.875 >= 0.8.
  const double s = fj.Similarity({"univ", "aukland"}, {"univ", "auckland"});
  EXPECT_NEAR(s, 1.875 / 2.125, 1e-9);  // (1 + 0.875) / (2 + 2 - 1.875)
  EXPECT_LT(s, 1.0);
}

TEST(FuzzyJaccardTest, ThresholdGatesFuzzyEdges) {
  FuzzyJaccardOptions opts;
  opts.token_sim_threshold = 0.95;  // too strict for a 1-in-8 typo
  FuzzyJaccard fj(opts);
  EXPECT_DOUBLE_EQ(fj.Similarity({"aukland"}, {"auckland"}), 0.0);
}

TEST(FuzzyJaccardTest, DuplicateTokensAreSetSemantics) {
  FuzzyJaccard fj;
  EXPECT_DOUBLE_EQ(fj.Similarity({"a", "a", "b"}, {"a", "b"}), 1.0);
}

TEST(FuzzyJaccardTest, EmptyInputs) {
  FuzzyJaccard fj;
  EXPECT_DOUBLE_EQ(fj.Similarity(std::vector<std::string>{}, {"a"}), 0.0);
  EXPECT_DOUBLE_EQ(fj.Similarity({"a"}, std::vector<std::string>{}), 0.0);
}

TEST(FuzzyJaccardTest, AtLeastPlainJaccard) {
  // FJ can only add fuzzy weight on top of exact matches.
  FuzzyJaccard fj;
  const std::vector<std::string> a = {"alpha", "beta", "gamma"};
  const std::vector<std::string> b = {"alpha", "betta", "delta"};
  const double plain = 1.0 / 5.0;  // only "alpha" matches exactly
  EXPECT_GE(fj.Similarity(a, b), plain);
}

TEST(FuzzyJaccardTest, TokenIdOverloadUsesDictionaryTexts) {
  TokenDictionary dict;
  const TokenId a = dict.GetOrAdd("research");
  const TokenId b = dict.GetOrAdd("resaerch");  // transposition, ed = 2
  FuzzyJaccard fj(FuzzyJaccardOptions{0.7});
  const double s = fj.Similarity(TokenSeq{a}, TokenSeq{b}, dict);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

}  // namespace
}  // namespace aeetes
