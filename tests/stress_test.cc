// Randomized stress sweep: random thresholds (not just the usual grid),
// random worlds, all strategies and both verification modes against the
// brute-force oracle. Complements the fixed-grid property tests.

#include <gtest/gtest.h>

#include <random>

#include "src/baseline/brute_force.h"
#include "src/baseline/faerie_r.h"
#include "src/core/candidate_generator.h"
#include "src/core/verifier.h"
#include "src/index/clustered_index.h"
#include "tests/test_util.h"

namespace aeetes {
namespace {

using testutil::MakeRandomWorld;
using testutil::Sorted;

TEST(StressTest, RandomThresholdsFullPipeline) {
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> tau_dist(0.5, 1.0);
  for (int iter = 0; iter < 30; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    const double tau = tau_dist(rng);
    const auto oracle = Sorted(BruteForceExtract(doc, *world.dd, tau));

    for (FilterStrategy s :
         {FilterStrategy::kSimple, FilterStrategy::kSkip,
          FilterStrategy::kDynamic, FilterStrategy::kLazy}) {
      for (bool positional : {false, true}) {
        CandidateGenOptions gen_options;
        gen_options.positional_filter = positional;
        auto gen = GenerateCandidates(s, doc, *world.dd, *index, tau,
                                      Metric::kJaccard, gen_options);
        const auto got = Sorted(VerifyCandidates(std::move(gen.candidates),
                                                 doc, *world.dd, tau, {}));
        ASSERT_EQ(got.size(), oracle.size())
            << FilterStrategyName(s) << " positional=" << positional
            << " tau=" << tau << " iter=" << iter;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i], oracle[i]);
          EXPECT_DOUBLE_EQ(got[i].score, oracle[i].score);
        }
      }
    }
  }
}

TEST(StressTest, RandomThresholdsFaerieRCrossCheck) {
  std::mt19937_64 rng(4343);
  std::uniform_real_distribution<double> tau_dist(0.55, 0.98);
  for (int iter = 0; iter < 20; ++iter) {
    auto world = MakeRandomWorld(rng);
    const Document doc = Document::FromTokens(world.doc_tokens);
    auto index = ClusteredIndex::Build(*world.dd);
    auto fr = FaerieR::Build(*world.dd);
    ASSERT_TRUE(fr.ok());
    const double tau = tau_dist(rng);
    auto gen = GenerateCandidates(FilterStrategy::kLazy, doc, *world.dd,
                                  *index, tau);
    const auto aeetes_matches = Sorted(VerifyCandidates(
        std::move(gen.candidates), doc, *world.dd, tau, {}));
    const auto faerie_matches = Sorted((*fr)->Extract(doc, tau));
    ASSERT_EQ(aeetes_matches.size(), faerie_matches.size())
        << "tau=" << tau << " iter=" << iter;
    for (size_t i = 0; i < aeetes_matches.size(); ++i) {
      EXPECT_EQ(aeetes_matches[i], faerie_matches[i]);
    }
  }
}

}  // namespace
}  // namespace aeetes
