#include "src/sim/jaccar.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/text/token_set.h"

namespace aeetes {
namespace {

class JaccArTest : public testing::Test {
 protected:
  void Build(double rule_weight = 1.0) {
    auto dict = std::make_unique<TokenDictionary>();
    for (const char* w : {"uq", "au", "university", "of", "queensland",
                          "australia", "purdue", "usa"}) {
      ids_[w] = dict->GetOrAdd(w);
    }
    RuleSet rules;
    ASSERT_TRUE(rules
                    .Add({Id("uq")},
                         {Id("university"), Id("of"), Id("queensland")},
                         rule_weight)
                    .ok());
    ASSERT_TRUE(rules.Add({Id("au")}, {Id("australia")}, rule_weight).ok());
    std::vector<TokenSeq> entities = {{Id("uq"), Id("au")},
                                      {Id("purdue"), Id("usa")}};
    auto dd = DerivedDictionary::Build(std::move(entities), rules,
                                       std::move(dict));
    ASSERT_TRUE(dd.ok());
    dd_ = std::move(*dd);
  }

  TokenId Id(const std::string& w) { return ids_.at(w); }

  TokenSeq Set(const std::vector<std::string>& words) {
    TokenSeq seq;
    for (const auto& w : words) seq.push_back(Id(w));
    return BuildOrderedSet(seq, dd_->token_dict());
  }

  std::map<std::string, TokenId> ids_;
  std::unique_ptr<DerivedDictionary> dd_;
};

TEST_F(JaccArTest, ExactDerivedMatchScoresOne) {
  Build();
  JaccArVerifier v(*dd_);
  const auto s =
      v.Score(0, Set({"university", "of", "queensland", "australia"}));
  EXPECT_DOUBLE_EQ(s.score, 1.0);
  EXPECT_NE(s.best_derived, JaccArScore::kNoDerived);
}

TEST_F(JaccArTest, MaxOverDerivedEntities) {
  Build();
  JaccArVerifier v(*dd_);
  // "uq australia" matches the single-rule variant exactly.
  EXPECT_DOUBLE_EQ(v.Score(0, Set({"uq", "australia"})).score, 1.0);
  // Plain Jaccard against the origin would be 1/3.
  EXPECT_DOUBLE_EQ(v.Score(1, Set({"purdue", "usa"})).score, 1.0);
}

TEST_F(JaccArTest, AsymmetryNoRulesOnSubstringSide) {
  Build();
  JaccArVerifier v(*dd_);
  // The substring "uq au" does NOT get rules applied to it when compared
  // to entity 1 ("purdue usa") — score stays 0.
  EXPECT_DOUBLE_EQ(v.Score(1, Set({"uq", "au"})).score, 0.0);
}

TEST_F(JaccArTest, PartialOverlapScores) {
  Build();
  JaccArVerifier v(*dd_);
  // {university of queensland au} vs best derived {university of
  // queensland australia} -> 3/5; vs {university of queensland au} (the
  // r1-only variant) -> 4/4 = 1.0.
  EXPECT_DOUBLE_EQ(
      v.Score(0, Set({"university", "of", "queensland", "au"})).score, 1.0);
}

TEST_F(JaccArTest, LengthFilteredScoreStillFindsWitnessAboveTau) {
  Build();
  JaccArVerifier v(*dd_);
  const TokenSeq s = Set({"uq", "au"});
  const auto unfiltered = v.Score(0, s, 0.0);
  const auto filtered = v.Score(0, s, 0.9);
  EXPECT_DOUBLE_EQ(unfiltered.score, filtered.score);
  EXPECT_TRUE(v.AtLeast(0, s, 0.9));
  EXPECT_FALSE(v.AtLeast(1, s, 0.5));
}

TEST_F(JaccArTest, WeightedRulesScaleScores) {
  Build(0.5);
  JaccArOptions opts;
  opts.weighted = true;
  JaccArVerifier v(*dd_, opts);
  // Unweighted origin match is unaffected.
  EXPECT_DOUBLE_EQ(v.Score(0, Set({"uq", "au"})).score, 1.0);
  // A one-rule derived match is scaled by the rule weight.
  EXPECT_DOUBLE_EQ(v.Score(0, Set({"uq", "australia"})).score, 0.5);
}

TEST_F(JaccArTest, BestAboveAgreesWithScoreAboveThreshold) {
  Build();
  JaccArVerifier v(*dd_);
  for (const std::vector<std::string>& words :
       {std::vector<std::string>{"uq", "au"},
        std::vector<std::string>{"uq", "australia"},
        std::vector<std::string>{"university", "of", "queensland", "au"},
        std::vector<std::string>{"purdue"}}) {
    const TokenSeq s = Set(words);
    for (double tau : {0.5, 0.7, 0.8, 0.9, 1.0}) {
      const JaccArScore exact = v.Score(0, s);
      const JaccArScore fast = v.BestAbove(0, s, tau);
      if (exact.score >= tau - 1e-9) {
        EXPECT_DOUBLE_EQ(fast.score, exact.score) << "tau=" << tau;
        EXPECT_NE(fast.best_derived, JaccArScore::kNoDerived);
      } else {
        EXPECT_LT(fast.score, tau) << "tau=" << tau;
      }
    }
  }
}

TEST_F(JaccArTest, BestAboveWeightedRespectsEffectiveThreshold) {
  Build(0.5);
  JaccArOptions opts;
  opts.weighted = true;
  JaccArVerifier v(*dd_, opts);
  const TokenSeq s = Set({"uq", "australia"});
  // Weighted score is 0.5; must pass at tau 0.4 and fail at tau 0.6.
  EXPECT_DOUBLE_EQ(v.BestAbove(0, s, 0.4).score, 0.5);
  EXPECT_LT(v.BestAbove(0, s, 0.6).score, 0.6);
}

TEST_F(JaccArTest, OtherMetricsSupported) {
  Build();
  JaccArOptions opts;
  opts.metric = Metric::kDice;
  JaccArVerifier v(*dd_, opts);
  // Dice({uq au}, {uq australia-variant}) with one common token of 2 and 2:
  // 2*1/(2+2) = 0.5 versus the exact 1.0 at the origin form.
  EXPECT_DOUBLE_EQ(v.Score(0, Set({"uq", "au"})).score, 1.0);
}

}  // namespace
}  // namespace aeetes
